"""Command-line interface: ``clou analyze victim.c --engine pht``.

Mirrors Fig. 6's tool shape: C source in; transmitters, witness chains,
and (optionally) fence repair out.  ``clou lint`` is the sequential
constant-time checker — the dataflow-only pre-pass that needs no S-AEG
and no solver.

All three commands run on a :class:`repro.sched.ClouSession`: work fans
out over ``--jobs`` worker processes (default ``$REPRO_JOBS`` or 1) with
per-item crash isolation, and analyze/lint results are cached
content-addressed under ``--cache-dir`` (default ``$REPRO_CACHE_DIR`` or
``~/.cache/repro-clou``; ``--no-cache`` disables).  ``--stats`` prints
the scheduler's cache/retry/timing counters — to stderr under ``--json``
so the JSON stays byte-stable.
"""

from __future__ import annotations

import argparse
import sys

from repro.clou.engine import ENGINES, engine_names
from repro.lcm.taxonomy import TransmitterClass
from repro.sched import AnalysisRequest, ClouSession, SchedulerInterrupt, \
    user_cache_dir
from repro.sched.cache import default_cache_dir

_SEVERITY_CHOICES = ("AT", "CT", "DT", "UCT", "UDT")

# Derived from the engine registry, never hand-listed: a newly
# registered engine appears in analyze and repair automatically.
_ENGINE_CHOICES = (*engine_names(), "all")

# Exit codes (documented in README.md).  LEAK outranks INCOMPLETE: a
# run that both found a leak and skipped work exits EXIT_LEAK.
EXIT_CLEAN = 0        # analysis complete, nothing at/above the gate
EXIT_LEAK = 1         # a detection at/above --fail-on-severity
EXIT_USAGE = 2        # bad arguments (argparse's convention)
EXIT_INCOMPLETE = 3   # --fail-on-incomplete and coverage was degraded
EXIT_INTERRUPTED = 130  # SIGINT/SIGTERM (128 + SIGINT)


def _add_scheduler_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: $REPRO_JOBS or 1)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECS",
                        help="per-function timeout in seconds (cooperative "
                             "engine budget + a 2x wall-clock kill under "
                             "--jobs)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache location (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro-clou)")
    parser.add_argument("--stats", action="store_true",
                        help="print scheduler stats (timings, cache "
                             "hits/misses, retries)")
    parser.add_argument("--memory-limit", type=int, default=None,
                        metavar="MB",
                        help="per-worker address-space ceiling in MiB "
                             "(RLIMIT_AS; parallel mode only). Items that "
                             "hit it resume from their last checkpoint")
    parser.add_argument("--stall-timeout", type=float, default=None,
                        metavar="SECS",
                        help="kill a worker that streams no checkpoint "
                             "for this long (hung, as opposed to slow; "
                             "parallel mode only)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="clou",
        description="Detect and repair Spectre leakage in C programs "
                    "using leakage containment models (ISCA 2022).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="detect transmitters")
    _add_analyze_flags(analyze)

    lint = sub.add_parser(
        "lint",
        help="sequential constant-time lint (dataflow only, no solver)")
    _add_lint_flags(lint)

    repair = sub.add_parser("repair", help="insert minimal lfences")
    _add_repair_flags(repair)

    serve = sub.add_parser(
        "serve",
        help="run a persistent analysis daemon (warm caches, "
             "function-granular incremental re-analysis)")
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="UNIX socket to listen on (default: "
                            "$REPRO_SOCKET)")
    serve.add_argument("--port", type=int, default=None, metavar="N",
                       help="TCP port to listen on instead of a UNIX "
                            "socket (0 = ephemeral)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for --port "
                            "(default: 127.0.0.1)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       metavar="N",
                       help="reject analyze requests beyond N queued or "
                            "running (clients see a busy error and exit "
                            f"{EXIT_INCOMPLETE}); default: unbounded")
    serve.add_argument("--tenant-budget", type=float, default=None,
                       metavar="N",
                       help="admit at most N analyze requests per second "
                            "per tenant (token bucket, burst max(1,N)); "
                            "default: unlimited")
    serve.add_argument("--faults", default=None, metavar="SPEC",
                       help="arm the deterministic fault injector for the "
                            "daemon's serve.* transport sites, e.g. "
                            "'seed=1;drop@serve.write#2' (chaos testing; "
                            "see repro.sched.faults)")
    _add_scheduler_flags(serve)

    cache = sub.add_parser(
        "cache", help="inspect and maintain the on-disk result cache")
    cachesub = cache.add_subparsers(dest="cache_command", required=True)
    cachegc = cachesub.add_parser(
        "gc",
        help="prune the cache to a size budget (least-recently-written "
             "entries evicted first; abandoned .tmp files swept)")
    cachegc.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache location (default: $REPRO_CACHE_DIR "
                              "or ~/.cache/repro-clou)")
    cachegc.add_argument("--cache-max-mb", type=float, default=1024.0,
                         metavar="MB",
                         help="size budget in MiB (default: 1024)")

    client = sub.add_parser(
        "client",
        help="talk to a clou serve daemon (falls back to in-process "
             "analysis when none is reachable)")
    csub = client.add_subparsers(dest="client_command", required=True)
    canalyze = csub.add_parser(
        "analyze",
        help="analyze via the daemon; same flags and byte-identical "
             "--json output as 'clou analyze'")
    _add_analyze_flags(canalyze)
    _add_daemon_flags(canalyze)
    canalyze.add_argument("--priority", type=int, default=0, metavar="N",
                          help="queue priority on the daemon (lower runs "
                               "first; default 0)")
    clint = csub.add_parser(
        "lint",
        help="lint via the daemon; same flags and byte-identical "
             "--json output as 'clou lint'")
    _add_lint_flags(clint)
    _add_daemon_flags(clint)
    clint.add_argument("--priority", type=int, default=0, metavar="N",
                       help="queue priority on the daemon (lower runs "
                            "first; default 0)")
    crepair = csub.add_parser(
        "repair",
        help="repair via the daemon; same flags and identical output "
             "as 'clou repair'")
    _add_repair_flags(crepair)
    _add_daemon_flags(crepair)
    crepair.add_argument("--priority", type=int, default=0, metavar="N",
                         help="queue priority on the daemon (lower runs "
                              "first; default 0)")
    cstatus = csub.add_parser(
        "status", help="print the daemon's queue depth and session stats")
    _add_daemon_flags(cstatus)
    cshutdown = csub.add_parser(
        "shutdown", help="ask the daemon to exit cleanly")
    _add_daemon_flags(cshutdown)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: generated programs checked against "
             "the cross-layer oracle matrix")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="master seed; the whole run is a pure "
                           "function of it (default 0)")
    fuzz.add_argument("--iterations", type=int, default=100, metavar="N",
                      help="generated inputs to try (default 100)")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      metavar="SECS",
                      help="wall-clock cap; truncates the run without "
                           "changing which input each iteration fuzzes")
    fuzz.add_argument("--oracle", action="append", default=None,
                      metavar="NAME",
                      help="restrict to an oracle (repeatable or "
                           "comma-separated; default: all). See "
                           "--list-oracles")
    fuzz.add_argument("--corpus", default="fuzz-corpus", metavar="DIR",
                      help="directory for shrunk reproducers "
                           "(default: fuzz-corpus/)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="record failing inputs without minimizing")
    fuzz.add_argument("--max-failures", type=int, default=5, metavar="N",
                      help="stop after N violations (default 5)")
    fuzz.add_argument("--list-oracles", action="store_true",
                      help="print the oracle matrix and exit")
    fuzz.add_argument("--replay", metavar="REPRODUCER.json",
                      help="re-run one corpus reproducer instead of "
                           "fuzzing; exits non-zero while it still fails")
    fuzz.add_argument("--contract-matrix", action="store_true",
                      help="instead of fuzzing, sweep every hardware "
                           "xstate policy against every contract LCM "
                           "(--iterations = programs per cell) and print "
                           "the conformance matrix; exits non-zero when "
                           "a measured cell contradicts the predicted "
                           "refinement relation")
    return parser


def _add_lint_flags(parser: argparse.ArgumentParser) -> None:
    """The ``clou lint`` surface — shared verbatim with ``clou client
    lint`` so the daemon path accepts exactly the same flags (and
    builds the identical requests, which is what makes ``--json``
    byte-identical)."""
    parser.add_argument("sources", nargs="+", help="C source file(s)")
    parser.add_argument("--secrets", default="",
                        help="comma-separated secret symbols (globals or "
                             "parameter names); replaces the default "
                             "all-public-inputs-are-secret policy")
    parser.add_argument("--public", default="",
                        help="comma-separated names to exempt from the "
                             "default secret-input policy")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as byte-stable JSON")
    parser.add_argument("--fail-on-severity", choices=_SEVERITY_CHOICES,
                        default=None, metavar="CLASS",
                        help="exit non-zero when any finding is at or above "
                             "this Table 1 class; choices: %(choices)s")
    _add_scheduler_flags(parser)


def _add_repair_flags(parser: argparse.ArgumentParser) -> None:
    """The ``clou repair`` surface — shared verbatim with ``clou
    client repair`` (same flags, same requests, identical output)."""
    parser.add_argument("source", help="C source file")
    parser.add_argument("--engine", choices=_ENGINE_CHOICES, default="pht",
                        help="detection engine to repair against, or "
                             "'all' for every registered engine "
                             "(default: pht)")
    parser.add_argument("--strategy", choices=["lfence", "protect"],
                        default="lfence",
                        help="lfence: minimal full-pipeline fences; "
                             "protect: Blade-style value-flow breaks (§7)")
    _add_scheduler_flags(parser)


def _add_daemon_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--socket", action="append", default=None,
                        metavar="PATH",
                        help="daemon UNIX socket; repeat for an ordered "
                             "failover list (default: $REPRO_SOCKETS or "
                             "$REPRO_SOCKET)")
    parser.add_argument("--port", type=int, default=None, metavar="N",
                        help="daemon TCP port (instead of a UNIX socket)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="daemon host for --port (default: 127.0.0.1)")
    parser.add_argument("--tenant", default=None, metavar="NAME",
                        help="admission-control bucket to bill this "
                             "request to (default: $REPRO_TENANT)")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECS",
                        help="wall-clock budget for the whole command; "
                             "stamped on every envelope so the daemon "
                             "drops or degrades work that cannot finish "
                             f"in time (exit {EXIT_INCOMPLETE})")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="extra attempts on busy/unreachable daemons, "
                             "with seeded-jitter exponential backoff and "
                             "--socket failover (default: 2)")


def _add_analyze_flags(analyze: argparse.ArgumentParser) -> None:
    """The full ``clou analyze`` surface — shared verbatim with
    ``clou client analyze`` so the daemon path accepts exactly the
    same flags (and so both build the identical request/config,
    which is what makes ``--json`` byte-identical)."""
    analyze.add_argument("source", nargs="?", default=None,
                         help="C source file")
    analyze.add_argument("--engine", choices=_ENGINE_CHOICES, default="pht",
                         help="detection engine, or 'all' to run every "
                              "registered engine (default: pht)")
    analyze.add_argument("--list-engines", action="store_true",
                         help="print the engine matrix (attack class, "
                              "speculation primitive, pruning, repair) "
                              "and exit")
    analyze.add_argument("--classes", default="udt,uct,dt,ct",
                         help="comma-separated transmitter classes")
    analyze.add_argument("--rob", type=int, default=250, help="ROB capacity")
    analyze.add_argument("--lsq", type=int, default=50, help="LSQ capacity")
    analyze.add_argument("--window", type=int, default=250,
                         help="sliding window size Wsize")
    analyze.add_argument("--no-addr-gep-filter", action="store_true",
                         help="disable the addr_gep benign-leak filter")
    analyze.add_argument("--no-range-pruning", action="store_true",
                         help="disable interval-analysis pruning of "
                              "provably in-bounds accesses (PHT)")
    analyze.add_argument("--witnesses", action="store_true",
                         help="print full witness chains")
    analyze.add_argument("--json", action="store_true",
                         help="emit the report as byte-stable JSON")
    analyze.add_argument("--dot", metavar="DIR",
                         help="write witness graphs as DOT files into DIR")
    analyze.add_argument("--alias-prediction", action="store_true",
                         help="assume PSF-style alias-predicting hardware "
                              "(§5.2 parameterization)")
    analyze.add_argument("--group", action="store_true",
                         help="group witnesses into §6.2.3 gadget "
                              "equivalence classes (one report per culprit)")
    analyze.add_argument("--secrets", default="",
                         help="comma-separated secret symbol names; "
                              "filters witnesses that cannot reach a "
                              "secret (§7 secrecy labels)")
    analyze.add_argument("--fail-on-severity", choices=_SEVERITY_CHOICES,
                         default=None, metavar="CLASS",
                         help="exit non-zero when any detection is at or "
                              "above this Table 1 class (CI gate); "
                              "choices: %(choices)s")
    analyze.add_argument("--fail-on-incomplete", action="store_true",
                         help=f"exit {EXIT_INCOMPLETE} when any function's "
                              "coverage was degraded (skipped or undecided "
                              "candidates, timeouts, errors) — a SAFE "
                              "verdict then certifies full coverage")
    analyze.add_argument("--solver-budget", type=int, default=None,
                         metavar="CONFLICTS",
                         help="per-query SAT conflict budget; queries that "
                              "exceed it degrade to UNKNOWN (counted as "
                              "undecided) instead of running unbounded")
    analyze.add_argument("--faults", default=None, metavar="SPEC",
                         help="arm the deterministic fault injector, e.g. "
                              "'seed=1;crash@worker.item#2' (degradation "
                              "testing; see repro.sched.faults)")
    _add_scheduler_flags(analyze)


def _config_from_args(args) -> "ClouConfig":
    from repro.clou import ClouConfig

    return ClouConfig(
        rob_size=args.rob,
        lsq_size=args.lsq,
        window_size=args.window,
        classes=tuple(args.classes.split(",")),
        addr_gep_filter=not args.no_addr_gep_filter,
        enable_range_pruning=not args.no_range_pruning,
        timeout_seconds=args.timeout,
        assume_alias_prediction=args.alias_prediction,
        solver_conflict_budget=args.solver_budget,
        fault_spec=args.faults,
    )


def _session_from_args(args, config=None) -> ClouSession:
    cache_dir = None
    if not args.no_cache:
        cache_dir = (args.cache_dir or default_cache_dir()
                     or user_cache_dir())
    # The engines' cooperative budget normally fires first; the
    # wall-clock kill (2x grace) only reaps workers hung outside it.
    hard_timeout = args.timeout * 2 if args.timeout else None
    return ClouSession(config=config, jobs=args.jobs, timeout=hard_timeout,
                       cache=not args.no_cache, cache_dir=cache_dir,
                       memory_limit_mb=args.memory_limit,
                       stall_timeout=args.stall_timeout)


def _print_stats(args, stats) -> None:
    if not args.stats:
        return
    stream = sys.stderr if getattr(args, "json", False) else sys.stdout
    print(stats.summary(), file=stream)


def _severity_threshold(name: str | None) -> int | None:
    if name is None:
        return None
    return TransmitterClass(name).severity


def _analyze_exit_code(report, threshold: int | None,
                       fail_on_incomplete: bool = False) -> int:
    if threshold is None:
        leaky = report.leaky
    else:
        worst = max((w.klass.severity for w in report.transmitters),
                    default=-1)
        leaky = worst >= threshold
    if leaky:
        return EXIT_LEAK
    if fail_on_incomplete and not report.complete:
        return EXIT_INCOMPLETE
    return EXIT_CLEAN


def _list_engines() -> int:
    width = max(len(name) for name in ENGINES)
    for name in engine_names():
        cls = ENGINES[name]
        print(f"{name:<{width}}  {cls.attack}")
        pad = " " * width
        print(f"{pad}    primitive: {cls.primitive}")
        print(f"{pad}    pruning:   {cls.range_pruning}")
        print(f"{pad}    repair:    {cls.repair_note}")
    return EXIT_CLEAN


def _combine_exit_codes(codes: list[int]) -> int:
    # LEAK outranks INCOMPLETE outranks CLEAN, as for a single engine.
    if EXIT_LEAK in codes:
        return EXIT_LEAK
    if EXIT_INCOMPLETE in codes:
        return EXIT_INCOMPLETE
    return EXIT_CLEAN


def _run_analyze(args) -> int:
    if args.list_engines:
        return _list_engines()
    if args.source is None:
        print("clou analyze: a C source file is required "
              "(or --list-engines)", file=sys.stderr)
        return EXIT_USAGE
    source = _read(args.source)
    session = _session_from_args(args, config=_config_from_args(args))
    engines = engine_names() if args.engine == "all" else (args.engine,)
    reports = [session.analyze(AnalysisRequest.analyze(
                   source, engine=engine, name=args.source))
               for engine in engines]
    return _emit_analyze(args, reports, engines, session.stats)


def _emit_analyze(args, reports, engines, stats) -> int:
    """Shared back half of ``clou analyze`` and ``clou client
    analyze``: identical printing (hence byte-identical ``--json``)
    and identical exit-code mapping regardless of where the reports
    were computed."""
    threshold = _severity_threshold(args.fail_on_severity)
    codes = [_analyze_exit_code(report, threshold, args.fail_on_incomplete)
             for report in reports]
    if args.json:
        from repro.clou.serialize import module_report_dict, to_json

        if len(reports) == 1:
            print(to_json(reports[0], stable=True))
        else:
            import json

            # One entry per engine, in engine_names() order: stable and
            # byte-identical across --jobs and cached/fresh runs.
            print(json.dumps(
                [module_report_dict(report, stable=True)
                 for report in reports],
                indent=2, ensure_ascii=False, sort_keys=True))
        _print_stats(args, stats)
        return _combine_exit_codes(codes)
    for report in reports:
        _print_analyze_report(args, report, engines)
    _print_stats(args, stats)
    return _combine_exit_codes(codes)


def _print_analyze_report(args, report, engines) -> None:
    if args.dot:
        import os

        from repro.viz import witness_to_dot

        os.makedirs(args.dot, exist_ok=True)
        prefix = f"{report.engine}_" if len(engines) > 1 else ""
        for i, witness in enumerate(report.transmitters):
            path = os.path.join(
                args.dot,
                f"{prefix}witness_{i:03d}_{witness.klass.value}.dot")
            with open(path, "w") as handle:
                handle.write(witness_to_dot(witness, name=f"w{i}"))
        print(f"wrote {len(report.transmitters)} witness graphs to "
              f"{args.dot}/")
    if len(engines) > 1:
        print(f"== engine {report.engine} ==")
    print(report.summary())
    for function_report in report.functions:
        if function_report.error:
            print(f"  {function_report.function}: ERROR "
                  f"{function_report.error}")
            continue
        print("  " + function_report.summary())
        if args.group or args.secrets:
            from repro.clou import group_witnesses, postprocess

            secrets = tuple(s for s in args.secrets.split(",") if s)
            result = postprocess(function_report, secret_symbols=secrets)
            print(f"    post-processing: {result.summary()}")
            for gadget_class in group_witnesses(result.kept):
                print(f"    {gadget_class}")
        if args.witnesses:
            for witness in function_report.transmitters():
                print()
                for line in witness.describe().splitlines():
                    print("    " + line)
    coverage = report.coverage()
    print(f"verdict: {report.verdict} "
          f"(examined={coverage['examined']} pruned={coverage['pruned']} "
          f"skipped={coverage['skipped_by_budget']} "
          f"undecided={coverage['undecided']})")


def _lint_requests(args) -> list[AnalysisRequest]:
    secrets = tuple(s for s in args.secrets.split(",") if s)
    public = tuple(s for s in args.public.split(",") if s)
    return [AnalysisRequest(source=_read(path), kind="lint", name=path,
                            secrets=secrets, public=public)
            for path in args.sources]


def _run_lint(args) -> int:
    session = _session_from_args(args)
    results = session.run(_lint_requests(args))
    for result in results:
        if result.exception is not None:
            raise result.exception
        if result.error is not None:
            raise SystemExit(f"lint {result.request.name}: {result.error}")
    return _emit_lint(args, [result.lint for result in results],
                      session.stats)


def _emit_lint(args, reports, stats) -> int:
    """Shared back half of ``clou lint`` and ``clou client lint``:
    identical printing (hence byte-identical ``--json``) and identical
    exit-code mapping regardless of where the reports were computed."""
    if args.json:
        import json

        from repro.analysis import lint_report_dict

        payload = [lint_report_dict(report) for report in reports]
        print(json.dumps(payload if len(payload) > 1 else payload[0],
                         indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.describe())
    _print_stats(args, stats)
    threshold = _severity_threshold(args.fail_on_severity)
    if threshold is None:
        return 0
    worst = max((f.severity.severity
                 for report in reports for f in report.findings), default=-1)
    return 1 if worst >= threshold else 0


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _run_repair(args) -> int:
    from repro.clou import ClouConfig

    config = ClouConfig(timeout_seconds=args.timeout)
    session = _session_from_args(args, config=config)
    engines = engine_names() if args.engine == "all" else (args.engine,)
    source = _read(args.source)
    outcomes = [session.repair(AnalysisRequest.repair(
                    source, engine=engine, name=args.source,
                    strategy=args.strategy))
                for engine in engines]
    return _emit_repair(args, outcomes, session.stats)


def _emit_repair(args, outcomes, stats) -> int:
    """Shared back half of ``clou repair`` and ``clou client repair``:
    identical output and exit-code mapping."""
    ok = True
    for results in outcomes:
        for result in results:
            print(result.summary())
            for block, index in result.fences:
                print(f"  lfence at {block}#{index}")
            ok &= result.fully_repaired
    _print_stats(args, stats)
    return 0 if ok else 1


def _daemon_address(args) -> tuple[str | None, int | None]:
    """Resolve (socket_path, port) from flags + ``$REPRO_SOCKET``
    (the ``serve`` side: exactly one listen address)."""
    from repro.sched import env_socket

    if args.port is not None:
        return None, args.port
    return args.socket or env_socket(), None


def _client_from_args(args) -> "ClouClient":
    """Build the daemon client from the shared ``_add_daemon_flags``
    surface: repeatable ``--socket`` failover list, ``--tenant``
    billing, a ``--deadline`` budget anchored at *now*, and the
    ``--retries`` backoff loop (seeded, hence deterministic)."""
    import time

    from repro.serve import ClouClient

    sockets = tuple(path for path in (args.socket or ()) if path)
    deadline = (time.time() + args.deadline
                if args.deadline is not None else None)
    if args.port is not None and not sockets:
        return ClouClient(port=args.port, host=args.host,
                          tenant=args.tenant, deadline=deadline,
                          retries=args.retries)
    return ClouClient(sockets=sockets or None, tenant=args.tenant,
                      deadline=deadline, retries=args.retries)


def _run_serve(args) -> int:
    import os
    import signal

    from repro.sched.faults import activate
    from repro.serve import ClouServer

    socket_path, port = _daemon_address(args)
    if socket_path is None and port is None:
        print("clou serve: pass --socket PATH or --port N "
              "(or set $REPRO_SOCKET)", file=sys.stderr)
        return EXIT_USAGE
    session = _session_from_args(args)
    server = ClouServer(session, socket_path=socket_path, port=port,
                        host=args.host, max_inflight=args.max_inflight,
                        tenant_budget=args.tenant_budget)
    with activate(args.faults):
        server.start()

        def _stop(signum, frame):
            server.shutdown()

        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)
        print(f"clou serve: listening on {server.address} "
              f"(pid {os.getpid()})", file=sys.stderr, flush=True)
        server.serve_forever()
    print("clou serve: shut down cleanly", file=sys.stderr)
    return EXIT_CLEAN


def _run_cache(args) -> int:
    from repro.sched import ResultCache

    directory = (args.cache_dir or default_cache_dir() or user_cache_dir())
    cache = ResultCache(directory)
    removed, remaining = cache.gc(int(args.cache_max_mb * 1024 * 1024))
    print(f"clou cache gc: {directory}: removed {removed} entr"
          f"{'y' if removed == 1 else 'ies'}, "
          f"{remaining / (1024 * 1024):.1f} MiB in {len(cache)} entries "
          f"remain (budget {args.cache_max_mb:g} MiB)")
    return EXIT_CLEAN


def _run_client(args) -> int:
    from repro.serve import DaemonBusy, DaemonUnreachable, DeadlineExceeded

    client = _client_from_args(args)
    if args.client_command == "status":
        import json

        try:
            with client:
                print(json.dumps(client.status(), indent=2, sort_keys=True))
        except DaemonUnreachable as error:
            print(f"clou client: {error}", file=sys.stderr)
            return 1
        return EXIT_CLEAN
    if args.client_command == "shutdown":
        try:
            with client:
                client.shutdown()
        except DaemonUnreachable as error:
            print(f"clou client: {error}", file=sys.stderr)
            return 1
        print(f"clou client: daemon at {client.address} shut down")
        return EXIT_CLEAN
    if args.client_command == "lint":
        # Daemon-first, in-process fallback — same shape as analyze:
        # the daemon is an accelerator, never a dependency.
        try:
            with client:
                return _client_lint(args, client)
        except DaemonUnreachable:
            return _run_lint(args)
        except (DaemonBusy, DeadlineExceeded) as error:
            print(f"clou client: {error}", file=sys.stderr)
            return EXIT_INCOMPLETE
    if args.client_command == "repair":
        try:
            with client:
                return _client_repair(args, client)
        except DaemonUnreachable:
            return _run_repair(args)
        except (DaemonBusy, DeadlineExceeded) as error:
            print(f"clou client: {error}", file=sys.stderr)
            return EXIT_INCOMPLETE
    # client analyze: daemon-first, in-process fallback.
    if args.list_engines:
        return _list_engines()
    if args.source is None:
        print("clou client analyze: a C source file is required "
              "(or --list-engines)", file=sys.stderr)
        return EXIT_USAGE
    source = _read(args.source)
    engines = engine_names() if args.engine == "all" else (args.engine,)
    config = _config_from_args(args)
    try:
        with client:
            reports, stats = _client_reports(args, client, source, engines,
                                             config)
    except DaemonUnreachable:
        # The daemon is an accelerator, not a dependency: run the
        # identical analysis in-process (same request, same config,
        # same cache keys — and the same bytes under --json).
        return _run_analyze(args)
    except (DaemonBusy, DeadlineExceeded) as error:
        print(f"clou client: {error}", file=sys.stderr)
        return EXIT_INCOMPLETE
    return _emit_analyze(args, reports, engines, stats)


def _client_lint(args, client) -> int:
    from repro.sched import SessionStats

    reports, stats = [], SessionStats()
    for request in _lint_requests(args):
        result = client.analyze(request, priority=args.priority)
        if result.error is not None:
            raise SystemExit(f"lint {result.request.name}: {result.error}")
        reports.append(result.lint)
        stats.merge(result.stats)
    return _emit_lint(args, reports, stats)


def _client_repair(args, client) -> int:
    from repro.clou import ClouConfig
    from repro.errors import AnalysisError
    from repro.sched import SessionStats

    # The same per-engine requests _run_repair builds; the config rides
    # the request so the daemon honors --timeout.
    config = ClouConfig(timeout_seconds=args.timeout)
    source = _read(args.source)
    engines = engine_names() if args.engine == "all" else (args.engine,)
    outcomes, stats = [], SessionStats()
    for engine in engines:
        result = client.analyze(AnalysisRequest.repair(
            source, engine=engine, name=args.source,
            strategy=args.strategy, config=config),
            priority=args.priority)
        if result.error is not None:
            raise AnalysisError(result.error)
        outcomes.append(result.repairs)
        stats.merge(result.stats)
    return _emit_repair(args, outcomes, stats)


def _client_reports(args, client, source, engines, config):
    from repro.errors import AnalysisError
    from repro.sched import SessionStats

    reports, stats = [], SessionStats()
    for engine in engines:
        result = client.analyze(
            AnalysisRequest.analyze(source, engine=engine,
                                    name=args.source, config=config),
            priority=args.priority)
        if result.error is not None:
            raise AnalysisError(result.error)
        reports.append(result.report)
        stats.merge(result.stats)
    return reports, stats


def _run_fuzz(args) -> int:
    from repro.fuzz import ORACLES, load_reproducer, replay, run_fuzz

    if args.list_oracles:
        width = max(len(name) for name in ORACLES)
        for oracle in ORACLES.values():
            every = f" (every {oracle.period}th)" if oracle.period > 1 else ""
            print(f"{oracle.name:<{width}}  [{oracle.kind:<6}] "
                  f"{oracle.description}{every}")
        return 0
    if args.contract_matrix:
        from repro.fuzz import conformance_matrix

        report = conformance_matrix(seed=args.seed,
                                    programs=args.iterations)
        print(report.render())
        return 0 if report.ok else 1
    if args.replay:
        reproducer = load_reproducer(args.replay)
        message = replay(reproducer)
        if message is None:
            print(f"replay {reproducer.stem}: PASS "
                  f"(originally: {reproducer.message})")
            return 0
        print(f"replay {reproducer.stem}: STILL FAILING: {message}")
        return 1
    oracle_names = None
    if args.oracle:
        oracle_names = tuple(
            name for part in args.oracle for name in part.split(",") if name)
    try:
        report = run_fuzz(
            seed=args.seed, iterations=args.iterations,
            time_budget=args.time_budget, oracle_names=oracle_names,
            corpus_dir=args.corpus, shrink=not args.no_shrink,
            max_failures=args.max_failures, log=print)
    except ValueError as error:  # unknown oracle name
        raise SystemExit(str(error))
    print(report.summary())
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "analyze":
            return _run_analyze(args)
        if args.command == "lint":
            return _run_lint(args)
        if args.command == "repair":
            return _run_repair(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "client":
            return _run_client(args)
        if args.command == "cache":
            return _run_cache(args)
        if args.command == "fuzz":
            return _run_fuzz(args)
    except (KeyboardInterrupt, SchedulerInterrupt):
        print("interrupted; worker pool shut down cleanly", file=sys.stderr)
        return EXIT_INTERRUPTED
    return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())
