"""Command-line interface: ``clou analyze victim.c --engine pht``.

Mirrors Fig. 6's tool shape: C source in; transmitters, witness chains,
and (optionally) fence repair out.
"""

from __future__ import annotations

import argparse
import sys

from repro.clou import ClouConfig, analyze_source
from repro.lcm.taxonomy import TransmitterClass


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="clou",
        description="Detect and repair Spectre leakage in C programs "
                    "using leakage containment models (ISCA 2022).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="detect transmitters")
    analyze.add_argument("source", help="C source file")
    analyze.add_argument("--engine", choices=["pht", "stl"], default="pht")
    analyze.add_argument("--classes", default="udt,uct,dt,ct",
                         help="comma-separated transmitter classes")
    analyze.add_argument("--rob", type=int, default=250, help="ROB capacity")
    analyze.add_argument("--lsq", type=int, default=50, help="LSQ capacity")
    analyze.add_argument("--window", type=int, default=250,
                         help="sliding window size Wsize")
    analyze.add_argument("--timeout", type=float, default=None,
                         help="per-function timeout (seconds)")
    analyze.add_argument("--no-addr-gep-filter", action="store_true",
                         help="disable the addr_gep benign-leak filter")
    analyze.add_argument("--witnesses", action="store_true",
                         help="print full witness chains")
    analyze.add_argument("--json", action="store_true",
                         help="emit the report as JSON")
    analyze.add_argument("--dot", metavar="DIR",
                         help="write witness graphs as DOT files into DIR")
    analyze.add_argument("--alias-prediction", action="store_true",
                         help="assume PSF-style alias-predicting hardware "
                              "(§5.2 parameterization)")
    analyze.add_argument("--group", action="store_true",
                         help="group witnesses into §6.2.3 gadget "
                              "equivalence classes (one report per culprit)")
    analyze.add_argument("--secrets", default="",
                         help="comma-separated secret symbol names; "
                              "filters witnesses that cannot reach a "
                              "secret (§7 secrecy labels)")

    repair = sub.add_parser("repair", help="insert minimal lfences")
    repair.add_argument("source", help="C source file")
    repair.add_argument("--engine", choices=["pht", "stl"], default="pht")
    repair.add_argument("--strategy", choices=["lfence", "protect"],
                        default="lfence",
                        help="lfence: minimal full-pipeline fences; "
                             "protect: Blade-style value-flow breaks (§7)")
    return parser


def _config_from_args(args) -> ClouConfig:
    return ClouConfig(
        rob_size=args.rob,
        lsq_size=args.lsq,
        window_size=args.window,
        classes=tuple(args.classes.split(",")),
        addr_gep_filter=not args.no_addr_gep_filter,
        timeout_seconds=args.timeout,
        assume_alias_prediction=args.alias_prediction,
    )


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    with open(args.source) as handle:
        source = handle.read()

    if args.command == "analyze":
        config = _config_from_args(args)
        report = analyze_source(source, engine=args.engine, config=config,
                                name=args.source)
        if args.json:
            from repro.clou.serialize import to_json

            print(to_json(report))
            return 1 if report.leaky else 0
        if args.dot:
            import os

            from repro.viz import witness_to_dot

            os.makedirs(args.dot, exist_ok=True)
            for i, witness in enumerate(report.transmitters):
                path = os.path.join(
                    args.dot, f"witness_{i:03d}_{witness.klass.value}.dot")
                with open(path, "w") as handle:
                    handle.write(witness_to_dot(witness, name=f"w{i}"))
            print(f"wrote {len(report.transmitters)} witness graphs to "
                  f"{args.dot}/")
        print(report.summary())
        for function_report in report.functions:
            if function_report.error:
                print(f"  {function_report.function}: ERROR "
                      f"{function_report.error}")
                continue
            print("  " + function_report.summary())
            if args.group or args.secrets:
                from repro.clou import group_witnesses, postprocess

                secrets = tuple(s for s in args.secrets.split(",") if s)
                result = postprocess(function_report, secret_symbols=secrets)
                print(f"    post-processing: {result.summary()}")
                for gadget_class in group_witnesses(result.kept):
                    print(f"    {gadget_class}")
            if args.witnesses:
                for witness in function_report.transmitters():
                    print()
                    for line in witness.describe().splitlines():
                        print("    " + line)
        return 1 if report.leaky else 0

    if args.command == "repair":
        from repro.clou import repair_function
        from repro.minic import compile_c

        module = compile_c(source, name=args.source)
        from repro.clou.acfg import build_acfg
        from repro.clou.repair import repair as run_repair

        results = [
            run_repair(build_acfg(module, fn.name).function, args.engine,
                       strategy=args.strategy)
            for fn in module.public_functions()
        ]
        ok = True
        for result in results:
            print(result.summary())
            for block, index in result.fences:
                print(f"  lfence at {block}#{index}")
            ok &= result.fully_repaired
        return 0 if ok else 1

    return 2


if __name__ == "__main__":
    sys.exit(main())
