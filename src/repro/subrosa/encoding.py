"""SAT-backed relational model finding for the microarchitectural layer.

subrosa's Alloy heritage (§3.4) is bounded model finding over relational
constraints.  This module encodes the xstate-witness space of a fixed
architectural execution into CNF — one boolean per (event, access kind)
and per candidate ``rfx`` edge — and enumerates or constrains models with
the package's CDCL solver.  Unlike the explicit enumeration in
:mod:`repro.lcm.microarch`, the SAT backend supports *partial instance*
queries ("find an execution where this rfx edge is present and that one
absent"), the Alloy idiom the paper's toolkit relies on.

Scope: single-core executions whose tfo totally orders xstate writers
(all litmus elaborations in this package), with the x86 confidentiality
predicate (rfx/cox respect tfo; frx unconstrained, §4.2).  Under a total
tfo, cox is forced, so it needs no variables.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import ModelError
from repro.events import (
    AccessKind,
    CandidateExecution,
    Event,
    XWitness,
)
from repro.lcm.xstate import TOP_ELEMENT, XStatePolicy
from repro.relations import Relation
from repro.solver import SatSolver, TseitinEncoder, disj, exactly_one, iff, var


def _kind_var(event: Event, kind: AccessKind):
    return var(f"kind_{event.eid}_{kind.value}")


def _rfx_var(writer: Event, reader: Event):
    return var(f"rfx_{writer.eid}_{reader.eid}")


class XWitnessEncoder:
    """Encodes the xstate-witness space of one architectural execution."""

    def __init__(self, execution: CandidateExecution, policy: XStatePolicy):
        self.execution = execution
        self.policy = policy
        structure = execution.structure
        self.top = structure.top
        self.events = [e for e in structure.events if policy.kinds(e)]
        self.elem_of: dict[Event, object] = {}
        for event in self.events:
            elems = policy.elements(event, structure)
            if len(elems) > 1:
                raise ModelError(
                    "the SAT encoding fixes one element per event; "
                    "alias-prediction policies need explicit enumeration"
                )
            self.elem_of[event] = elems[0] if elems else None
        self.encoder = TseitinEncoder()
        self._readers: list[Event] = []
        self._rfx_candidates: dict[Event, list[Event]] = {}
        self._encode()
        self._sat: SatSolver | None = None

    # -- encoding ----------------------------------------------------------

    def _reads(self, event: Event):
        return disj(*(
            _kind_var(event, kind)
            for kind in self.policy.kinds(event) if kind.reads_xstate
        ))

    def _writes(self, event: Event):
        return disj(*(
            _kind_var(event, kind)
            for kind in self.policy.kinds(event) if kind.writes_xstate
        ))

    def _encode(self) -> None:
        structure = self.execution.structure
        tfo = structure.tfo
        for event in self.events:
            kinds = self.policy.kinds(event)
            self.encoder.assert_expr(exactly_one(
                [_kind_var(event, kind) for kind in kinds]
            ))
        for reader in self.events:
            if self.elem_of[reader] in (None, TOP_ELEMENT):
                continue
            reading = self._reads(reader)
            if reading == disj():  # no reading kinds at all
                continue
            candidates = [
                w for w in self.events
                if w != reader
                and self.elem_of[w] == self.elem_of[reader]
                and any(k.writes_xstate for k in self.policy.kinds(w))
                and (w, reader) in tfo  # x86 confidentiality: rfx <= tfo
            ]
            if self.top is not None:
                candidates = [self.top, *candidates]
            self._readers.append(reader)
            self._rfx_candidates[reader] = candidates
            edge_vars = [_rfx_var(w, reader) for w in candidates]
            # Reads ⇒ exactly one source; no read ⇒ no source.
            self.encoder.assert_expr(
                iff(reading, exactly_one(edge_vars))
                if edge_vars else ~reading
            )
            for w, edge in zip(candidates, edge_vars):
                if self.top is not None and w == self.top:
                    continue
                self.encoder.assert_expr(edge >> self._writes(w))

    def candidate_edges(self) -> list[tuple[Event, Event]]:
        """Every candidate rfx (writer, reader) edge, in deterministic
        reader-major order — the domain of partial-instance queries."""
        return [(writer, reader)
                for reader in self._readers
                for writer in self._rfx_candidates[reader]]

    # -- solving -------------------------------------------------------------
    #
    # One persistent solver serves every query against this encoding.
    # ``require``/``forbid`` edges become solver *assumptions* (retracted
    # after each call), never root assertions — asserting them into
    # ``self.encoder`` was a bug that contaminated every later solve and
    # enumerate with stale partial-instance constraints.  Learned clauses
    # and saved phases survive across the whole query stream, including
    # the blocking-clause iterations of :meth:`enumerate`.

    @property
    def solver(self) -> SatSolver:
        """The encoding's long-lived incremental solver."""
        if self._sat is None:
            self._sat = SatSolver.from_cnf(self.encoder.cnf)
        return self._sat

    def _assumptions(self, require, forbid) -> list[int]:
        # lookup (not index_of[]) keeps the historical permissiveness:
        # a non-candidate edge maps to a fresh unconstrained variable,
        # so requiring it is trivially satisfiable rather than an error.
        cnf = self.encoder.cnf
        literals = [cnf.lookup(f"rfx_{w.eid}_{r.eid}") for w, r in require]
        literals += [-cnf.lookup(f"rfx_{w.eid}_{r.eid}") for w, r in forbid]
        return literals

    def decode(self, named_model: dict[str, bool]) -> CandidateExecution:
        kinds: dict[Event, AccessKind] = {}
        for event in self.events:
            for kind in self.policy.kinds(event):
                if named_model.get(f"kind_{event.eid}_{kind.value}"):
                    kinds[event] = kind
        rfx_pairs = []
        for reader in self._readers:
            for writer in self._rfx_candidates[reader]:
                if named_model.get(f"rfx_{writer.eid}_{reader.eid}"):
                    rfx_pairs.append((writer, reader))
        order = {e: i for i, e in enumerate(self.execution.structure.events)}
        writers_by_elem: dict[object, list[Event]] = {}
        for event in self.events:
            if kinds.get(event) is not None and kinds[event].writes_xstate \
                    and self.elem_of[event] not in (None, TOP_ELEMENT):
                writers_by_elem.setdefault(self.elem_of[event], []).append(event)
        cox_pairs = []
        for writers in writers_by_elem.values():
            ordered = sorted(writers, key=lambda w: order[w])
            cox_pairs.extend(Relation.from_total_order(ordered))
            if self.top is not None:
                cox_pairs.extend((self.top, w) for w in ordered)
        xwitness = XWitness(
            xmap=dict(self.elem_of),
            kinds=kinds,
            rfx=Relation(rfx_pairs, "rfx"),
            cox=Relation(cox_pairs, "cox"),
        )
        return self.execution.with_xwitness(xwitness)

    def solve(self, require=(), forbid=()) -> CandidateExecution | None:
        """Find one xstate witness with the given rfx edges present /
        absent (an Alloy-style partial instance query).  Answered as an
        assumption query on the persistent solver, so the constraints
        vanish once the call returns."""
        model = self.solver.solve(self._assumptions(require, forbid))
        if model is None:
            return None
        named = self.encoder.cnf.decode(model)
        return self.decode(named)

    def _projection(self) -> list[str]:
        names = sorted(self.encoder.cnf.index_of)
        return [n for n in names if n.startswith(("kind_", "rfx_"))]

    def enumerate(self, limit: int = 10_000) -> Iterator[CandidateExecution]:
        """Yield every xstate witness (projected on kind/rfx variables).

        Runs on the persistent solver: each found projection is blocked
        by a clause guarded by a per-call activation literal, so the
        blocking clauses are (a) live only while this enumeration's
        assumption holds and (b) retired with one root unit afterwards —
        later solves and enumerations see the unblocked space again,
        with all learned clauses retained.
        """
        cnf = self.encoder.cnf
        projection = self._projection()
        indices = [cnf.index_of[name] for name in projection]
        solver = self.solver
        activation = cnf.new_var()
        produced = 0
        try:
            while produced < limit:
                model = solver.solve([activation])
                if model is None:
                    return
                named = {name: model[index]
                         for name, index in zip(projection, indices)}
                yield self.decode(named)
                produced += 1
                if not indices:
                    return
                solver.add_clause([-activation] + [
                    -index if model[index] else index for index in indices
                ])
        finally:
            solver.add_clause([-activation])

    def count(self, limit: int = 10_000) -> int:
        return sum(1 for _ in self.enumerate(limit))

    @property
    def statistics(self) -> dict[str, int]:
        """Lifetime counters of the persistent solver (zeros before the
        first query)."""
        if self._sat is None:
            return dict(SatSolver().statistics)
        return dict(self._sat.statistics)

    # -- fresh-solver reference paths ----------------------------------------
    #
    # Differential references for the incremental-vs-fresh fuzz oracle
    # and the bench_solver ablation: same verdicts/witness projections,
    # but a throwaway solver per query and no state carried over.

    def solve_fresh(self, require=(), forbid=()) -> CandidateExecution | None:
        """Reference for :meth:`solve`: fresh solver, constraints added
        as clauses of that solver only (``self.encoder`` untouched)."""
        solver = SatSolver.from_cnf(self.encoder.cnf)
        for literal in self._assumptions(require, forbid):
            solver.add_clause([literal])
        model = solver.solve()
        if model is None:
            return None
        named = self.encoder.cnf.decode(model)
        return self.decode(named)

    def enumerate_fresh(self, limit: int = 10_000
                        ) -> Iterator[CandidateExecution]:
        """Reference for :meth:`enumerate`: a brand-new solver per model
        query (re-watching every clause and re-learning everything each
        iteration) — the fresh-per-query discipline the persistent
        solver replaces."""
        cnf = self.encoder.cnf
        projection = self._projection()
        indices = [cnf.index_of[name] for name in projection]
        blocking: list[list[int]] = []
        while len(blocking) < limit:
            solver = SatSolver.from_cnf(cnf)
            for clause in blocking:
                solver.add_clause(clause)
            model = solver.solve()
            if model is None:
                return
            named = {name: model[index]
                     for name, index in zip(projection, indices)}
            yield self.decode(named)
            if not indices:
                return
            blocking.append([-index if model[index] else index
                             for index in indices])
