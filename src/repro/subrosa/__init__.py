"""subrosa: design and formal analysis of LCM specifications (§3.4)."""

from repro.subrosa.encoding import XWitnessEncoder
from repro.subrosa.finder import Comparison, check, compare, find, instances

__all__ = [
    "Comparison",
    "XWitnessEncoder",
    "check",
    "compare",
    "find",
    "instances",
]
