"""subrosa: bounded model finding over the LCM vocabulary (§3.4).

The paper mechanizes LCMs in Alloy; subrosa here is the same idea built
on this package's own enumeration machinery: within the (finite) bounds
of a litmus program's event structures, it

- **finds** candidate executions satisfying a user predicate
  (:func:`find`),
- **checks** assertions over all executions, returning a counterexample
  when one exists (:func:`check`), and
- **compares** two LCM specifications, reporting microarchitectural
  behaviours allowed by one but not the other (:func:`compare`) — the
  "automatically comparing LCMs across microarchitectures" use case the
  paper plans for subrosa.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.events import CandidateExecution, EventStructure
from repro.lcm.contracts import LeakageContainmentModel
from repro.lcm.microarch import xwitness_candidates
from repro.litmus import Program
from repro.mcm import consistent_executions

Predicate = Callable[[CandidateExecution], bool]


def _structures(lcm: LeakageContainmentModel,
                subject: Program | EventStructure) -> list[EventStructure]:
    if isinstance(subject, EventStructure):
        return [subject]
    return lcm.event_structures(subject)


def instances(lcm: LeakageContainmentModel,
              subject: Program | EventStructure) -> Iterator[CandidateExecution]:
    """Every microarchitecturally complete candidate execution the LCM
    allows for the subject — the full bounded model space."""
    for structure in _structures(lcm, subject):
        for execution in consistent_executions(structure, lcm.mcm):
            policy = lcm.policy_factory()
            yield from xwitness_candidates(
                execution, policy, lcm.confidentiality
            )


def find(lcm: LeakageContainmentModel,
         subject: Program | EventStructure,
         predicate: Predicate,
         limit: int = 1) -> list[CandidateExecution]:
    """Find up to ``limit`` executions satisfying the predicate."""
    found = []
    for execution in instances(lcm, subject):
        if predicate(execution):
            found.append(execution)
            if len(found) >= limit:
                break
    return found


def check(lcm: LeakageContainmentModel,
          subject: Program | EventStructure,
          assertion: Predicate) -> CandidateExecution | None:
    """Check an assertion over every execution; return a counterexample
    or None if the assertion holds throughout the bounds."""
    for execution in instances(lcm, subject):
        if not assertion(execution):
            return execution
    return None


def _signature(execution: CandidateExecution) -> frozenset:
    """A label-level fingerprint of an execution's comx behaviour."""
    xw = execution.xwitness
    parts = set()
    for a, b in execution.rfx:
        parts.add(("rfx", a.label, b.label))
    for a, b in execution.cox:
        parts.add(("cox", a.label, b.label))
    for event, kind in xw.kinds.items():
        parts.add(("kind", event.label, kind.value))
    for event, elem in xw.xmap.items():
        parts.add(("elem", event.label, str(elem)))
    return frozenset(parts)


@dataclass(frozen=True)
class Comparison:
    """Behaviours distinguishing two LCMs on a common subject."""

    only_first: tuple[CandidateExecution, ...]
    only_second: tuple[CandidateExecution, ...]
    common: int

    @property
    def equivalent(self) -> bool:
        return not self.only_first and not self.only_second

    def __repr__(self) -> str:
        return (
            f"<Comparison: {len(self.only_first)} only-first, "
            f"{len(self.only_second)} only-second, {self.common} common>"
        )


def compare(first: LeakageContainmentModel,
            second: LeakageContainmentModel,
            subject: Program | EventStructure,
            max_witnesses: int = 8) -> Comparison:
    """Compare the microarchitectural semantics two LCMs assign to the
    same subject.  Both LCMs must agree on the architectural side (the
    comparison elaborates with the *first* model's speculation config so
    the event structures match)."""
    structures = _structures(first, subject)

    def semantics(lcm: LeakageContainmentModel) -> dict[frozenset, CandidateExecution]:
        by_signature: dict[frozenset, CandidateExecution] = {}
        for structure in structures:
            for execution in consistent_executions(structure, lcm.mcm):
                policy = lcm.policy_factory()
                for candidate in xwitness_candidates(
                    execution, policy, lcm.confidentiality
                ):
                    by_signature.setdefault(_signature(candidate), candidate)
        return by_signature

    first_sigs = semantics(first)
    second_sigs = semantics(second)
    only_first = [first_sigs[s] for s in first_sigs.keys() - second_sigs.keys()]
    only_second = [second_sigs[s] for s in second_sigs.keys() - first_sigs.keys()]
    common = len(first_sigs.keys() & second_sigs.keys())
    return Comparison(
        tuple(only_first[:max_witnesses]),
        tuple(only_second[:max_witnesses]),
        common,
    )
