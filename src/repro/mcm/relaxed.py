"""A weakly-ordered MCM (ARM-flavoured), for model-comparison studies.

LCMs are defined per-ISA (§2); the paper's tooling focuses on x86-TSO
but the vocabulary is model-generic.  This module provides a third
consistency predicate at the weak end of the spectrum — program order is
preserved only through syntactic dependencies and explicit fences — so
the MCM layer (and subrosa comparisons built on it) can span SC ⊃ TSO ⊃
RELAXED:

- ``sc_per_loc`` (coherence) still holds — all real ISAs keep it;
- ``causality`` uses ``ppo = dep ∪ (dep ; po)``: an access is ordered
  after a read it depends on (address/data/control), and writes are
  ordered after reads that control them; independent accesses may
  reorder freely.

The classic splits: MP's weak outcome is **allowed** (no dependency
between the flag read and the data read), but MP-with-an-address-
dependency is forbidden; SB and LB weak outcomes are allowed.
"""

from __future__ import annotations

from repro.events import CandidateExecution, MemoryEvent
from repro.mcm.model import (
    MemoryModel,
    causality,
    committed_only,
    rmw_atomicity,
    sc_per_loc,
)
from repro.relations import Relation


def _relaxed_ppo(execution: CandidateExecution) -> Relation:
    """Dependency-preserved program order: dep edges between committed
    memory events (addr/data/ctrl), closed under following program order
    (a dependent access orders everything po-after it is ordered before).
    """
    structure = execution.structure
    po = committed_only(structure.po)
    dep = committed_only(structure.dep).filter(
        lambda a, b: isinstance(a, MemoryEvent) and isinstance(b, MemoryEvent)
    )
    return dep


def _relaxed_predicate(execution: CandidateExecution) -> bool:
    return (
        sc_per_loc(execution)
        and rmw_atomicity(execution)
        and causality(execution, _relaxed_ppo)
    )


RELAXED = MemoryModel("RELAXED", _relaxed_predicate, _relaxed_ppo)
