"""Axiomatic memory consistency models (§2.1.3).

A :class:`MemoryModel` is a named consistency predicate over candidate
executions, built from auxiliary predicates (``sc_per_loc``, ``causality``,
``rmw_atomicity``) exactly as the paper presents TSO.

Consistency is evaluated over *committed* events only: transient and
prefetch events are microarchitectural and constrained by the LCM's
confidentiality predicate instead.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.events import CandidateExecution, MemoryEvent, Read, Write
from repro.relations import Relation

ConsistencyPredicate = Callable[[CandidateExecution], bool]


def committed_only(relation: Relation) -> Relation:
    """Restrict a relation to committed (architectural) endpoints."""
    return relation.filter(lambda a, b: a.committed and b.committed)


def sc_per_loc(execution: CandidateExecution) -> bool:
    """acyclic(rf + co + fr + po_loc) — coherence (§2.1.3)."""
    structure = execution.structure
    return (
        committed_only(execution.rf)
        | committed_only(execution.co)
        | committed_only(execution.fr)
        | committed_only(structure.po_loc)
    ).is_acyclic()


def rmw_atomicity(execution: CandidateExecution) -> bool:
    """Atomicity of read-modify-writes.

    The litmus language has no RMW instructions, so the predicate requires
    only that no event is both a Read and a Write — trivially true for the
    event vocabulary, kept for fidelity to the TSO definition.
    """
    return not any(
        isinstance(e, Read) and isinstance(e, Write)
        for e in execution.structure.events
    )


def _tso_ppo(execution: CandidateExecution) -> Relation:
    """x86-TSO preserved program order: all (Write, Write) and
    (Read, MemoryEvent) pairs in po (§2.1.3)."""
    po = committed_only(execution.structure.po)
    return po.filter(
        lambda a, b: isinstance(a, MemoryEvent)
        and isinstance(b, MemoryEvent)
        and (
            (isinstance(a, Write) and isinstance(b, Write))
            or isinstance(a, Read)
        )
    )


def _sc_ppo(execution: CandidateExecution) -> Relation:
    po = committed_only(execution.structure.po)
    return po.filter(
        lambda a, b: isinstance(a, MemoryEvent) and isinstance(b, MemoryEvent)
    )


def causality(execution: CandidateExecution,
              ppo: Callable[[CandidateExecution], Relation]) -> bool:
    """acyclic(rfe + co + fr + ppo + fence) (§2.1.3)."""
    return (
        committed_only(execution.rfe)
        | committed_only(execution.co)
        | committed_only(execution.fr)
        | ppo(execution)
        | committed_only(execution.structure.fence_order)
    ).is_acyclic()


@dataclass(frozen=True)
class MemoryModel:
    """A named axiomatic MCM: a consistency predicate plus its ppo."""

    name: str
    predicate: ConsistencyPredicate
    ppo: Callable[[CandidateExecution], Relation]

    def is_consistent(self, execution: CandidateExecution) -> bool:
        return self.predicate(execution)

    def __repr__(self) -> str:
        return f"<MemoryModel {self.name}>"


def _tso_predicate(execution: CandidateExecution) -> bool:
    return (
        sc_per_loc(execution)
        and rmw_atomicity(execution)
        and causality(execution, _tso_ppo)
    )


def _sc_predicate(execution: CandidateExecution) -> bool:
    return (
        sc_per_loc(execution)
        and rmw_atomicity(execution)
        and causality(execution, _sc_ppo)
    )


TSO = MemoryModel("x86-TSO", _tso_predicate, _tso_ppo)
SC = MemoryModel("SC", _sc_predicate, _sc_ppo)
