"""Litmus-test outcome exploration, herd/litmus7 style.

The architectural semantics LCMs build on (§2.2) is exactly what
litmus-style tools enumerate: the final register/memory outcomes a
memory model allows.  This module evaluates *outcome predicates* over a
program's consistent candidate executions, supporting the classic
"allowed/forbidden" litmus methodology used to validate our MCM layer
(and shipped as a small litmus-test library in :data:`CLASSIC_TESTS`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events import Bottom, CandidateExecution
from repro.litmus import Program, parse_program, elaborate
from repro.mcm.enumerate import consistent_executions
from repro.mcm.model import SC, TSO, MemoryModel


def observed_values(execution: CandidateExecution) -> dict[str, str]:
    """Map ``"tid:label"`` to the value each committed read observed.

    Reads from ⊤ observe ``"init"``; reads from a write observe the
    write's (symbolic) data.
    """
    outcome: dict[str, str] = {}
    top = execution.structure.top
    for write, read in execution.rf:
        if not read.committed or isinstance(read, Bottom):
            continue
        key = f"{read.tid}:{read.label}"
        if top is not None and write == top:
            outcome[key] = "init"
        else:
            outcome[key] = str(write.data)
    return outcome


def outcomes(program: Program, model: MemoryModel) -> set[frozenset]:
    """All distinct read-outcome combinations the model allows."""
    found: set[frozenset] = set()
    for structure in elaborate(program):
        for execution in consistent_executions(structure, model):
            found.add(frozenset(observed_values(execution).items()))
    return found


def allows(program: Program, model: MemoryModel,
           outcome: dict[str, str]) -> bool:
    """Is the (partial) outcome allowed?  Keys are ``"tid:label"``."""
    target = set(outcome.items())
    return any(target <= candidate for candidate in outcomes(program, model))


@dataclass(frozen=True)
class LitmusTest:
    """A named litmus test with its expected verdicts per model."""

    name: str
    source: str
    outcome: dict[str, str]
    allowed: dict[str, bool]  # model name -> allowed?
    description: str = ""

    def program(self) -> Program:
        return parse_program(self.source, name=self.name)

    def check(self, model: MemoryModel) -> bool:
        """True when the model's verdict matches the expectation."""
        expected = self.allowed[model.name]
        return allows(self.program(), model, self.outcome) == expected


CLASSIC_TESTS: list[LitmusTest] = [
    LitmusTest(
        name="MP",
        description="message passing: seeing the flag implies seeing the data",
        source="""
thread 0:
  store x, 1
  store flag, 1
thread 1:
  r1 = load flag
  r2 = load x
""",
        outcome={"1:1": "1", "1:2": "init"},
        allowed={"SC": False, "x86-TSO": False},
    ),
    LitmusTest(
        name="SB",
        description="store buffering (Dekker): both loads stale",
        source="""
thread 0:
  store x, 1
  r1 = load y
thread 1:
  store y, 1
  r2 = load x
""",
        outcome={"0:2": "init", "1:2": "init"},
        allowed={"SC": False, "x86-TSO": True},
    ),
    LitmusTest(
        name="SB+mfences",
        description="store buffering with fences: forbidden even on TSO",
        source="""
thread 0:
  store x, 1
  mfence
  r1 = load y
thread 1:
  store y, 1
  mfence
  r2 = load x
""",
        outcome={"0:3": "init", "1:3": "init"},
        allowed={"SC": False, "x86-TSO": False},
    ),
    LitmusTest(
        name="LB",
        description="load buffering: both loads see the other's store",
        source="""
thread 0:
  r1 = load x
  store y, 1
thread 1:
  r2 = load y
  store x, 1
""",
        outcome={"0:1": "1", "1:1": "1"},
        allowed={"SC": False, "x86-TSO": False},
    ),
    LitmusTest(
        name="CoRR",
        description="coherence: two reads of one location never go backwards",
        source="""
thread 0:
  store x, 1
thread 1:
  r1 = load x
  r2 = load x
""",
        outcome={"1:1": "1", "1:2": "init"},
        allowed={"SC": False, "x86-TSO": False},
    ),
    LitmusTest(
        name="2+2W",
        description="coherence orders on two locations may disagree on TSO? "
                    "(no: writes serialize per location; outcome checks rf)",
        source="""
thread 0:
  store x, 1
  store y, 2
thread 1:
  store y, 1
  store x, 2
thread 2:
  r1 = load x
  r2 = load y
""",
        outcome={"2:1": "2", "2:2": "2"},
        allowed={"SC": True, "x86-TSO": True},
    ),
    LitmusTest(
        name="WRC",
        description="write-to-read causality: transitive visibility",
        source="""
thread 0:
  store x, 1
thread 1:
  r1 = load x
  beqz r1, SKIP
  store y, 1
SKIP: nop
thread 2:
  r2 = load y
  beqz r2, OUT
  r3 = load x
OUT: nop
""",
        outcome={"1:1": "1", "2:1": "1", "2:3": "init"},
        allowed={"SC": False, "x86-TSO": False},
    ),
    LitmusTest(
        name="IRIW",
        description="independent reads of independent writes: all cores "
                    "agree on the order of stores (multi-copy atomicity)",
        source="""
thread 0:
  store x, 1
thread 1:
  store y, 1
thread 2:
  r1 = load x
  r2 = load y
thread 3:
  r3 = load y
  r4 = load x
""",
        outcome={"2:1": "1", "2:2": "init", "3:1": "1", "3:2": "init"},
        allowed={"SC": False, "x86-TSO": False},
    ),
    LitmusTest(
        name="R",
        description="the R shape: store-store vs. store-read ordering",
        source="""
thread 0:
  store x, 1
  store y, 1
thread 1:
  store y, 2
  r1 = load x
""",
        outcome={"1:2": "init"},
        allowed={"SC": True, "x86-TSO": True},
    ),
]


def run_classic_suite(models: list[MemoryModel] | None = None
                      ) -> list[tuple[str, str, bool]]:
    """(test, model, verdict-correct) triples over the classic tests."""
    models = models or [SC, TSO]
    results = []
    for test in CLASSIC_TESTS:
        for model in models:
            results.append((test.name, model.name, test.check(model)))
    return results
