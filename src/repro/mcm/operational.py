"""An operational x86-TSO simulator, for cross-validating the axiomatic
model.

The paper argues axiomatic contracts are more amenable to automated
verification than operational ones (§1) — but the two styles must agree
on what they model.  This module implements the classic operational TSO
machine (Owens-Sarkar-Sewell: per-thread FIFO store buffers over a
shared memory, with non-deterministic buffer drain) and exhaustively
enumerates its outcomes for litmus programs.  Tests check the outcome
sets coincide with the axiomatic TSO of :mod:`repro.mcm.model` — the
cross-validation that gives the architectural layer its footing.

The simulator executes the same litmus AST the elaborator consumes, so
any litmus test can be checked both ways.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.litmus.ast import (
    Address,
    Alu,
    CondBranch,
    FenceInstr,
    Jump,
    Load,
    Mov,
    Nop,
    Operand,
    Program,
    Store,
)

_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "mul": lambda a, b: a * b,
    "lt": lambda a, b: int(a < b),
    "eq": lambda a, b: int(a == b),
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
}

INIT = "init"


@dataclass(frozen=True)
class _ThreadState:
    pc: int
    registers: tuple[tuple[str, object], ...]
    buffer: tuple[tuple[str, object], ...]  # FIFO of (location, value)
    reads: tuple[tuple[str, object], ...]   # (label, observed value)
    steps: int

    def register(self, name: str):
        return dict(self.registers).get(name, 0)


def _location_key(address: Address, registers: dict) -> str:
    if address.index is None:
        return address.base
    index = (registers.get(str(address.index.value), 0)
             if address.index.is_reg else address.index.value)
    return f"{address.base}[{index}]"


def _operand(registers: dict, operand: Operand):
    if operand.is_reg:
        return registers.get(str(operand.value), 0)
    return operand.value


class OperationalTSO:
    """Exhaustive-interleaving TSO machine for litmus programs.

    State: per-thread (pc, registers, store buffer, read log) plus shared
    memory.  Transitions: any thread steps its next instruction, or any
    thread drains the oldest entry of its store buffer.  Loads first
    forward from the youngest same-location buffer entry, else read
    shared memory.  MFENCE blocks until the buffer is empty.
    """

    def __init__(self, program: Program, max_states: int = 400_000,
                 max_steps_per_thread: int = 64):
        self.program = program
        self.max_states = max_states
        self.max_steps_per_thread = max_steps_per_thread
        self._labels = [t.label_index() for t in program.threads]

    # -- state stepping -----------------------------------------------------

    def outcomes(self) -> set[frozenset]:
        """All distinct read-outcome sets (``"tid:label" -> value``)."""
        initial_threads = tuple(
            _ThreadState(pc=0, registers=(), buffer=(), reads=(), steps=0)
            for _ in self.program.threads
        )
        initial = (initial_threads, frozenset())  # (threads, memory items)
        seen = {initial}
        stack = [initial]
        outcomes: set[frozenset] = set()
        explored = 0
        while stack:
            explored += 1
            if explored > self.max_states:
                raise ModelError(
                    "operational state space too large; shrink the test"
                )
            threads, memory = stack.pop()
            successors = list(self._successors(threads, memory))
            if not successors:
                outcome = frozenset(
                    (f"{self.program.threads[i].tid}:{label}", value)
                    for i, thread in enumerate(threads)
                    for label, value in thread.reads
                )
                outcomes.add(outcome)
                continue
            for successor in successors:
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return outcomes

    def _successors(self, threads, memory):
        for i, thread in enumerate(threads):
            # Drain the oldest buffered store.
            if thread.buffer:
                location, value = thread.buffer[0]
                new_thread = _ThreadState(
                    pc=thread.pc,
                    registers=thread.registers,
                    buffer=thread.buffer[1:],
                    reads=thread.reads,
                    steps=thread.steps,
                )
                new_memory = frozenset(
                    {(l, v) for l, v in memory if l != location}
                    | {(location, value)}
                )
                yield (self._replace(threads, i, new_thread), new_memory)
            # Execute the next instruction.
            stepped = self._step_instruction(i, thread, memory)
            if stepped is not None:
                new_thread, new_memory = stepped
                yield (self._replace(threads, i, new_thread), new_memory)

    @staticmethod
    def _replace(threads, i, new_thread):
        return tuple(
            new_thread if j == i else t for j, t in enumerate(threads)
        )

    def _step_instruction(self, i, thread, memory):
        instructions = self.program.threads[i].instructions
        if thread.pc >= len(instructions):
            return None
        if thread.steps >= self.max_steps_per_thread:
            return None
        ins = instructions[thread.pc]
        registers = dict(thread.registers)
        pc = thread.pc + 1
        buffer = thread.buffer
        reads = thread.reads

        if isinstance(ins, Load):
            location = _location_key(ins.address, registers)
            value = None
            for buffered_location, buffered_value in reversed(thread.buffer):
                if buffered_location == location:
                    value = buffered_value  # store forwarding
                    break
            if value is None:
                memory_map = dict(memory)
                value = memory_map.get(location, INIT)
            registers[ins.dest] = value
            reads = reads + ((f"{thread.pc + 1}", value),)
        elif isinstance(ins, Store):
            location = _location_key(ins.address, registers)
            value = _operand(registers, ins.src)
            buffer = buffer + ((location, value),)
        elif isinstance(ins, Alu):
            lhs = _operand(registers, ins.lhs)
            rhs = _operand(registers, ins.rhs)
            if isinstance(lhs, str) or isinstance(rhs, str):
                # Arithmetic on an init-valued read: treat init as 0.
                lhs = 0 if isinstance(lhs, str) else lhs
                rhs = 0 if isinstance(rhs, str) else rhs
            registers[ins.dest] = _OPS[ins.op](lhs, rhs)
        elif isinstance(ins, Mov):
            registers[ins.dest] = _operand(registers, ins.src)
        elif isinstance(ins, CondBranch):
            value = registers.get(ins.cond, 0)
            # Litmus convention: reads of initial memory observe zero.
            truthy = bool(value) and value != INIT
            condition = (not truthy) if not ins.negated else truthy
            if condition:
                pc = self._labels[i].get(
                    ins.target, len(instructions))
        elif isinstance(ins, Jump):
            pc = self._labels[i].get(ins.target, len(instructions))
        elif isinstance(ins, FenceInstr):
            if thread.buffer:
                return None  # mfence: wait for the buffer to drain
        elif isinstance(ins, Nop):
            pass
        else:
            raise ModelError(f"operational model: unsupported {ins!r}")

        new_thread = _ThreadState(
            pc=pc,
            registers=tuple(sorted(registers.items())),
            buffer=buffer,
            reads=reads,
            steps=thread.steps + 1,
        )
        return new_thread, memory


def operational_outcomes(program: Program) -> set[frozenset]:
    """Outcome sets of the operational TSO machine, in the same
    ``"tid:label" -> value-string`` format as
    :func:`repro.mcm.outcomes.outcomes` (values stringified, reads from
    initial memory reported as ``"init"``)."""
    raw = OperationalTSO(program).outcomes()
    normalized: set[frozenset] = set()
    for outcome in raw:
        normalized.add(frozenset(
            (key, value if value == INIT else str(value))
            for key, value in outcome
        ))
    return normalized
