"""Enumerating execution witnesses for an event structure (§2.1.2).

A witness chooses, for every read, the write that sources it (``rf``) and,
per location, a total coherence order on writes (``co``).  ⊤ is always the
coherence-first write; ⊥ observers are architecturally pinned to read from
⊤ (the observer does not share memory with the program, §3.2).

Architectural ``rf`` sources are committed writes (or ⊤); transient reads
also receive an rf source — the value they would architecturally observe —
which the non-interference predicates compare against ``rfx`` (Fig. 2b
draws these edges explicitly).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

from repro.events import (
    Bottom,
    CandidateExecution,
    EventStructure,
    ExecutionWitness,
    Write,
)
from repro.mcm.model import MemoryModel
from repro.relations import Relation


def witness_candidates(structure: EventStructure) -> Iterator[ExecutionWitness]:
    """Yield every (rf, co) witness for the structure.

    The blow-up is |writers|^|reads| × Π |writes_at(loc)|! — fine for
    litmus-scale structures; the Clou pipeline never calls this.
    """
    top = structure.top
    reads = [r for r in structure.reads if not isinstance(r, Bottom)]
    bottom_rf = [(top, b) for b in structure.bottoms] if top is not None else []

    source_choices: list[list[object]] = []
    for read in reads:
        committed_writers = [
            w for w in structure.writes_at(read.loc) if w.committed and w != read
        ]
        choices: list[object] = committed_writers
        if top is not None:
            choices = [top, *choices]
        if not choices:
            choices = [None]
        source_choices.append(choices)

    co_choices: list[list[tuple[Write, ...]]] = []
    for loc in sorted(structure.locations, key=lambda l: (l.base, str(l.offset))):
        writers = [w for w in structure.writes_at(loc) if w.committed]
        orders = [tuple(p) for p in itertools.permutations(writers)] or [()]
        co_choices.append(orders)

    for rf_combo in itertools.product(*source_choices):
        rf_pairs = list(bottom_rf)
        rf_pairs.extend(
            (source, read)
            for source, read in zip(rf_combo, reads)
            if source is not None
        )
        for co_combo in itertools.product(*co_choices):
            co_pairs: list[tuple[object, object]] = []
            for order in co_combo:
                co_pairs.extend(Relation.from_total_order(order))
                if top is not None:
                    co_pairs.extend((top, w) for w in order)
            yield ExecutionWitness(
                rf=Relation(rf_pairs, "rf"),
                co=Relation(co_pairs, "co"),
            )


def _read_value(structure: EventStructure, witness: ExecutionWitness,
                read) -> int | None:
    """The concrete value a read observes, when statically known:
    0 from ⊤ (litmus convention: memory is zero-initialized), or the
    integer data of a committed store."""
    for source, sink in witness.rf:
        if sink != read:
            continue
        if structure.top is not None and source == structure.top:
            return 0
        data = getattr(source, "data", None)
        if isinstance(data, str):
            try:
                return int(data)
            except ValueError:
                return None
        return None
    return None


def branch_value_consistent(structure: EventStructure,
                            witness: ExecutionWitness) -> bool:
    """Does the witness agree with the path's resolved branch outcomes?

    A candidate execution fixes a control-flow path *and* a data-flow
    witness; when a branch condition is a raw loaded value, the two must
    agree (a `beqz` resolved taken cannot coexist with the load observing
    a nonzero value).
    """
    for _branch, read, expects_zero in structure.branch_constraints:
        value = _read_value(structure, witness, read)
        if value is None:
            continue  # symbolic: unconstrained
        if (value == 0) != expects_zero:
            return False
    return True


def consistent_executions(structure: EventStructure,
                          model: MemoryModel) -> list[CandidateExecution]:
    """All candidate executions of the structure allowed by the MCM —
    the program's architectural semantics restricted to this path (§2.2).

    Witnesses contradicting the path's resolved branch values are
    excluded (see :func:`branch_value_consistent`).
    """
    executions = []
    for witness in witness_candidates(structure):
        if not branch_value_consistent(structure, witness):
            continue
        execution = CandidateExecution(structure, witness)
        if model.is_consistent(execution):
            executions.append(execution)
    return executions


def architectural_semantics(structures: list[EventStructure],
                            model: MemoryModel) -> list[CandidateExecution]:
    """The architectural semantics of a whole program: consistent candidate
    executions across every event structure (§2.2)."""
    executions = []
    for structure in structures:
        executions.extend(consistent_executions(structure, model))
    return executions
