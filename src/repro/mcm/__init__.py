"""Axiomatic memory consistency models and witness enumeration."""

from repro.mcm.enumerate import (
    architectural_semantics,
    consistent_executions,
    witness_candidates,
)
from repro.mcm.operational import OperationalTSO, operational_outcomes
from repro.mcm.outcomes import (
    CLASSIC_TESTS,
    LitmusTest,
    allows,
    outcomes,
    run_classic_suite,
)
from repro.mcm.model import (
    SC,
    TSO,
    MemoryModel,
    causality,
    committed_only,
    rmw_atomicity,
    sc_per_loc,
)

__all__ = [
    "CLASSIC_TESTS",
    "LitmusTest",
    "OperationalTSO",
    "SC",
    "TSO",
    "MemoryModel",
    "architectural_semantics",
    "causality",
    "committed_only",
    "consistent_executions",
    "rmw_atomicity",
    "sc_per_loc",
    "allows",
    "operational_outcomes",
    "outcomes",
    "run_classic_suite",
    "witness_candidates",
]
