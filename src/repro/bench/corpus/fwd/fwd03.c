/* FWD03: speculative store to an attacker-indexed slot feeds a later
 * double-indexed transmit. */
uint64_t idx_size = 16;
uint64_t index_table[16];
uint8_t sec[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;

void fwd_3(size_t idx, uint64_t val) {
    if (idx < idx_size) {
        index_table[idx] = val;
    }
    tmp &= pub_ary[sec[index_table[0]] * 512];
}
