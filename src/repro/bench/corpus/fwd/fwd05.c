/* FWD05: v1.1 overwrite of a length field gates a subsequent access. */
uint64_t msg_cap = 16;
uint64_t msg_len = 4;
uint8_t msg[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;

void fwd_5(size_t idx, uint8_t val) {
    if (idx < msg_cap) {
        msg[idx] = val;
    }
    if (msg_len < msg_cap) {
        tmp &= pub_ary[msg[msg_len] * 512];
    }
}
