/* FWD04: forwarded speculative store value used as branch condition
 * (control-flow leakage of forwarded data). */
uint64_t buf_size = 16;
uint64_t buf[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;

void fwd_4(size_t idx, uint64_t val) {
    if (idx < buf_size) {
        buf[idx] = val;
    }
    if (buf[1]) {
        tmp &= pub_ary[0];
    }
}
