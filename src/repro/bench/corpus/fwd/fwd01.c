/* FWD01: Spectre v1.1 -- bounds-check-bypassed speculative store
 * overwrites a pointer that is then dereferenced. */
uint64_t buf_size = 16;
uint8_t buf[16];
uint8_t pub_ary[256 * 512];
uint8_t *ptr;
uint8_t tmp = 0;

void fwd_1(size_t idx, uint8_t val) {
    if (idx < buf_size) {
        buf[idx] = val;
    }
    tmp &= *ptr;
}
