/* FWD02: speculative out-of-bounds store forwards into a same-window
 * load used as a transmit index. */
uint64_t buf_size = 16;
uint8_t buf[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;

void fwd_2(size_t idx, uint8_t val) {
    if (idx < buf_size) {
        buf[idx] = val;
        tmp &= pub_ary[buf[0] * 512];
    }
}
