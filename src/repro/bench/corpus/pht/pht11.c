/* PHT11: transmit via an undefined library call (memcmp; Kocher #11). */
uint64_t array1_size = 16;
uint8_t array1[16];
uint8_t array2[256 * 512];
uint8_t temp = 0;
int memcmp(void *a, void *b, size_t n);

void victim_function_v11(size_t x) {
    if (x < array1_size) {
        temp = memcmp(&temp, array2 + (array1[x] * 512), 1);
    }
}
