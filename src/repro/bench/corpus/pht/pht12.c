/* PHT12: attacker-derived composite index (Kocher #12). */
uint64_t array1_size = 16;
uint8_t array1[16];
uint8_t array2[256 * 512];
uint8_t temp = 0;

void victim_function_v12(size_t x, size_t y) {
    if ((x + y) < array1_size) {
        temp &= array2[array1[x + y] * 512];
    }
}
