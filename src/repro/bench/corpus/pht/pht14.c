/* PHT14: leak via a secret-dependent branch (control transmitter). */
uint64_t array1_size = 16;
uint8_t array1[16];
uint8_t array2[256 * 512];
uint8_t temp = 0;

void victim_function_v14(size_t x) {
    if (x < array1_size) {
        if (array1[x]) {
            temp &= array2[64 * 512];
        }
    }
}
