/* PHT13: the transmitter is a store rather than a load (Kocher #13). */
uint64_t array1_size = 16;
uint8_t array1[16];
uint8_t array2[256 * 512];

void victim_function_v13(size_t x) {
    if (x < array1_size) {
        array2[array1[x] * 512] = 1;
    }
}
