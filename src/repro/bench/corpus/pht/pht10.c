/* PHT10: leak comparison result rather than data (Kocher #10). */
uint64_t array1_size = 16;
uint8_t array1[16];
uint8_t array2[256 * 512];
uint8_t temp = 0;

void victim_function_v10(size_t x, uint8_t k) {
    if (x < array1_size) {
        if (array1[x] == k) {
            temp &= array2[0];
        }
    }
}
