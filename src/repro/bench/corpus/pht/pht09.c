/* PHT09: check through a separate flag variable (Kocher #9). */
uint64_t array1_size = 16;
uint8_t array1[16];
uint8_t array2[256 * 512];
uint8_t temp = 0;

void victim_function_v09(size_t x, int *x_is_safe) {
    if (*x_is_safe) {
        temp &= array2[array1[x] * 512];
    }
}
