/* PHT07: equality comparison against a trusted limit (Kocher #7). */
uint64_t array1_size = 16;
uint8_t array1[16];
uint8_t array2[256 * 512];
uint8_t temp = 0;
size_t last_safe_x = 0;

void victim_function_v07(size_t x) {
    if (x == last_safe_x) {
        temp &= array2[array1[x] * 512];
    }
}
