/* PHT06: index fetched from attacker-reachable memory (Kocher #6). */
uint64_t array1_size = 16;
uint8_t array1[16];
uint8_t array2[256 * 512];
uint8_t temp = 0;
size_t last_x = 0;

void victim_function_v06(void) {
    size_t x = last_x;
    if (x < array1_size) {
        temp &= array2[array1[x] * 512];
    }
}
