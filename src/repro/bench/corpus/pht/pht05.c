/* PHT05: transmit through explicit pointer arithmetic (Kocher #5). */
uint64_t array1_size = 16;
uint8_t array1[16];
uint8_t array2[256 * 512];
uint8_t temp = 0;

void victim_function_v05(size_t x) {
    if (x < array1_size) {
        temp &= *(array2 + array1[x] * 512);
    }
}
