/* PHT08: bounds check folded into a ternary expression (Kocher #8). */
uint64_t array1_size = 16;
uint8_t array1[16];
uint8_t array2[256 * 512];
uint8_t temp = 0;

void victim_function_v08(size_t x) {
    temp &= array2[array1[x < array1_size ? (x + 1) : 0] * 512];
}
