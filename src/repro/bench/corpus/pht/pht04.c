/* PHT04: bounds check hidden behind a (inlined) helper (Kocher #4). */
uint64_t array1_size = 16;
uint8_t array1[16];
uint8_t array2[256 * 512];
uint8_t temp = 0;

static uint64_t is_x_safe(size_t x) {
    return x < array1_size;
}

void victim_function_v04(size_t x) {
    if (is_x_safe(x)) {
        temp &= array2[array1[x] * 512];
    }
}
