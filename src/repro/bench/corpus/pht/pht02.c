/* PHT02: bounds check via bitmask comparison (Kocher #2). */
uint64_t array1_size = 16;
uint8_t array1[16];
uint8_t array2[256 * 512];
uint8_t temp = 0;

void victim_function_v02(size_t x) {
    if ((x & 0xffff) < array1_size) {
        temp &= array2[array1[x] * 512];
    }
}
