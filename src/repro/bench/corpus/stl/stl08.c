/* STL08: bypass across a helper-call boundary (inlined; BH case_8). */
uint64_t ary_size = 16;
uint8_t sec_ary[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;

static uint32_t mask(uint32_t v) {
    return v & (ary_size - 1);
}

void case_8(uint32_t idx) {
    uint32_t ridx = mask(idx);
    tmp &= pub_ary[sec_ary[ridx] * 512];
}
