/* STL10: lfence after the sanitizing store -- intended SECURE. */
uint64_t ary_size = 16;
uint8_t sec_ary[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;

void case_10(uint32_t idx) {
    uint32_t ridx = idx & (ary_size - 1);
    lfence();
    tmp &= pub_ary[sec_ary[ridx] * 512];
}
