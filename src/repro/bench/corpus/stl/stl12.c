/* STL12: overwritten secret pointer dereferenced transiently (BH case_12). */
uint8_t secret_key[16];
uint8_t public_key[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;

void case_12(uint8_t **slot) {
    *slot = public_key;
    tmp &= pub_ary[(*slot)[0] * 512];
}
