/* STL03: double pointer indirection over the sanitized slot (BH case_3). */
uint64_t ary_size = 16;
uint8_t sec_ary[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;

void case_3(uint32_t idx) {
    uint32_t ridx = idx & (ary_size - 1);
    uint32_t *p = &ridx;
    *p = 0;
    tmp &= pub_ary[sec_ary[ridx] * 512];
}
