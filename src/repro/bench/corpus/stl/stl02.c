/* STL02: stale stack slot read before the sanitizing store resolves. */
uint64_t ary_size = 16;
uint8_t sec_ary[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;

void case_2(uint32_t idx) {
    uint32_t ridx;
    ridx = idx & (ary_size - 1);
    tmp &= pub_ary[sec_ary[ridx] * 512];
}
