/* STL01: masked store bypassed by the dependent load (BH case_1). */
uint64_t ary_size = 16;
uint8_t *sec_ary;
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;

void case_1(uint32_t idx) {
    uint32_t ridx = idx & (ary_size - 1);
    sec_ary[ridx] = 0;
    tmp &= pub_ary[sec_ary[ridx]];
}
