/* STL06: register-kept index -- intended SECURE, but Clang -O0 spills
 * it to the stack anyway (the paper's `register` observation, §6.1). */
uint64_t ary_size = 16;
uint8_t sec_ary[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;

void case_6(uint32_t idx) {
    register uint32_t ridx = idx & (ary_size - 1);
    tmp &= pub_ary[sec_ary[ridx] * 512];
}
