/* STL09: sanitized value flows through a second memory cell (BH case_9). */
uint64_t ary_size = 16;
uint8_t sec_ary[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;

void case_9(uint32_t idx) {
    uint32_t ridx = idx & (ary_size - 1);
    uint32_t copy = ridx;
    tmp &= pub_ary[sec_ary[copy] * 512];
}
