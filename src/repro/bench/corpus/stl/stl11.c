/* STL11: conditional sanitization, bypassable on both arms (BH case_11). */
uint64_t ary_size = 16;
uint8_t sec_ary[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;

void case_11(uint32_t idx) {
    uint32_t ridx = idx;
    if (ridx >= ary_size) {
        ridx = 0;
    }
    tmp &= pub_ary[sec_ary[ridx] * 512];
}
