/* STL13: labeled "secure" by the benchmark authors and BH, but Clou
 * finds data leakage: the reload bypasses the store to the stack slot
 * (the paper's STL13 mislabel, §6.1). */
uint64_t ary_size = 16;
uint8_t sec_ary[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;

static uint32_t sanitize(uint32_t idx) {
    uint32_t ridx = idx & (ary_size - 1);
    return ridx;
}

void case_13(uint32_t idx) {
    uint32_t safe = sanitize(idx);
    tmp &= pub_ary[sec_ary[safe] * 512];
}
