/* STL14: sanitizing store far from the use (outside the LSQ window):
 * intended SECURE under realistic LSQ capacities. */
uint64_t ary_size = 16;
uint8_t sec_ary[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;
uint64_t scratch[64];

void case_14(uint32_t idx) {
    uint32_t ridx = idx & (ary_size - 1);
    for (int i = 0; i < 64; i++) {
        scratch[i] = scratch[i] + 1;
    }
    tmp &= pub_ary[sec_ary[ridx] * 512];
}
