/* STL05: sanitizing store to a global index slot (BH case_5). */
uint64_t ary_size = 16;
uint8_t sec_ary[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;
uint64_t g_idx;

void case_5(uint64_t idx) {
    g_idx = idx & (ary_size - 1);
    tmp &= pub_ary[sec_ary[g_idx] * 512];
}
