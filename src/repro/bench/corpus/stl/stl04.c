/* STL04: pointer overwrite bypassed by the dereference (BH case_4). */
uint8_t secret[16];
uint8_t pub[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;
uint8_t *ptr;

void case_4(void) {
    ptr = pub;
    tmp &= pub_ary[ptr[0] * 512];
}
