/* STL07: two sequential sanitizing stores, both bypassable (BH case_7). */
uint64_t ary_size = 16;
uint8_t sec_ary[16];
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;

void case_7(uint32_t idx) {
    uint32_t ridx = idx;
    ridx = ridx & (ary_size - 1);
    ridx = ridx % ary_size;
    tmp &= pub_ary[sec_ary[ridx] * 512];
}
