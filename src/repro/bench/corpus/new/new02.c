/* NEW02: variant of NEW01 where the speculatively written secret is
 * re-loaded as an index inside the same window. */
uint64_t sec_size = 16;
uint8_t sec[16];
uint64_t slot;
uint8_t pub_ary[256 * 512];
uint8_t tmp = 0;

void new_2(size_t idx1, size_t idx2) {
    if (idx1 < sec_size && idx2 < sec_size) {
        slot = sec[idx1] * 512;
    }
    tmp &= pub_ary[slot];
}
