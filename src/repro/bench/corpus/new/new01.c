/* NEW01 (paper §6.1): attacker-controlled speculative write of a secret
 * (returned by an attacker-controlled access) to a pointer/index in
 * memory; the overwritten pointer is then dereferenced, transmitting
 * the secret.  Pitchfork misses this; BH and Clou find it. */
uint64_t sec_ary1_size = 16;
uint64_t sec_ary2_size = 16;
uint8_t sec_ary1[16];
uint8_t sec_ary2[16];
uint64_t *ptr;

void new_1(size_t idx1, size_t idx2) {
    if (idx1 < sec_ary1_size && idx2 < sec_ary2_size) {
        sec_ary2[idx2] += sec_ary1[idx1] * 512;
    }
    *ptr = 0;
}
