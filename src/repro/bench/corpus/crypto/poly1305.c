/* Full poly1305-shaped one-time MAC with clamping, 26-bit limbs, and a
 * constant-time final reduction. */

static uint32_t p_load32(uint8_t *p) {
    return (uint32_t)p[0] | ((uint32_t)p[1] << 8)
         | ((uint32_t)p[2] << 16) | ((uint32_t)p[3] << 24);
}

int crypto_onetimeauth_poly1305(uint8_t *out, uint8_t *m, uint64_t inlen,
                                uint8_t *key) {
    uint64_t r0 = p_load32(key) & 0x3ffffff;
    uint64_t r1 = (p_load32(key + 3) >> 2) & 0x3ffff03;
    uint64_t r2 = (p_load32(key + 6) >> 4) & 0x3ffc0ff;
    uint64_t r3 = (p_load32(key + 9) >> 6) & 0x3f03fff;
    uint64_t r4 = (p_load32(key + 12) >> 8) & 0x00fffff;
    uint64_t h0 = 0;
    uint64_t h1 = 0;
    uint64_t h2 = 0;
    uint64_t h3 = 0;
    uint64_t h4 = 0;
    for (uint64_t off = 0; off + 16 <= inlen; off += 16) {
        h0 += p_load32(m + off) & 0x3ffffff;
        h1 += (p_load32(m + off + 3) >> 2) & 0x3ffffff;
        h2 += (p_load32(m + off + 6) >> 4) & 0x3ffffff;
        h3 += (p_load32(m + off + 9) >> 6) & 0x3ffffff;
        h4 += (p_load32(m + off + 12) >> 8) | (1 << 24);
        uint64_t d0 = h0 * r0 + h1 * (5 * r4) + h2 * (5 * r3)
                    + h3 * (5 * r2) + h4 * (5 * r1);
        uint64_t d1 = h0 * r1 + h1 * r0 + h2 * (5 * r4)
                    + h3 * (5 * r3) + h4 * (5 * r2);
        uint64_t d2 = h0 * r2 + h1 * r1 + h2 * r0
                    + h3 * (5 * r4) + h4 * (5 * r3);
        uint64_t d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0
                    + h4 * (5 * r4);
        uint64_t d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;
        uint64_t carry = d0 >> 26; h0 = d0 & 0x3ffffff;
        d1 += carry; carry = d1 >> 26; h1 = d1 & 0x3ffffff;
        d2 += carry; carry = d2 >> 26; h2 = d2 & 0x3ffffff;
        d3 += carry; carry = d3 >> 26; h3 = d3 & 0x3ffffff;
        d4 += carry; carry = d4 >> 26; h4 = d4 & 0x3ffffff;
        h0 += carry * 5;
    }
    uint64_t g0 = h0 + 5;
    uint64_t g1 = h1 + (g0 >> 26);
    uint64_t g2 = h2 + (g1 >> 26);
    uint64_t g3 = h3 + (g2 >> 26);
    uint64_t g4 = h4 + (g3 >> 26);
    uint64_t mask = 0 - ((g4 >> 26) & 1);
    h0 = (h0 & ~mask) | (g0 & 0x3ffffff & mask);
    h1 = (h1 & ~mask) | (g1 & 0x3ffffff & mask);
    for (int i = 0; i < 4; i++) {
        out[i] = (uint8_t)((h0 >> (8 * i)) & 0xff);
        out[4 + i] = (uint8_t)((h1 >> (8 * i)) & 0xff);
        out[8 + i] = (uint8_t)((h2 >> (8 * i)) & 0xff);
        out[12 + i] = (uint8_t)((h3 >> (8 * i)) & 0xff);
    }
    return 0;
}
