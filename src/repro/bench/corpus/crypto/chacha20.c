/* ChaCha20-shaped stream cipher: the second-largest libsodium primitive
 * family; widens the Fig. 8 size axis. */

uint8_t chacha_pad[64];

static uint32_t cc_load32(uint8_t *p) {
    return (uint32_t)p[0] | ((uint32_t)p[1] << 8)
         | ((uint32_t)p[2] << 16) | ((uint32_t)p[3] << 24);
}

static void cc_store32(uint8_t *p, uint32_t v) {
    p[0] = (uint8_t)(v & 0xff);
    p[1] = (uint8_t)((v >> 8) & 0xff);
    p[2] = (uint8_t)((v >> 16) & 0xff);
    p[3] = (uint8_t)((v >> 24) & 0xff);
}

static void chacha_block(uint8_t *out, uint8_t *key, uint8_t *nonce,
                         uint32_t counter) {
    uint32_t x[16];
    x[0] = 0x61707865;
    x[1] = 0x3320646e;
    x[2] = 0x79622d32;
    x[3] = 0x6b206574;
    for (int i = 0; i < 8; i++) {
        x[4 + i] = cc_load32(key + 4 * i);
    }
    x[12] = counter;
    x[13] = cc_load32(nonce);
    x[14] = cc_load32(nonce + 4);
    x[15] = cc_load32(nonce + 8);
    uint32_t w[16];
    for (int i = 0; i < 16; i++) {
        w[i] = x[i];
    }
    for (int round = 0; round < 10; round++) {
        for (int q = 0; q < 4; q++) {
            int a = q;
            int b = 4 + q;
            int c = 8 + q;
            int d = 12 + q;
            w[a] += w[b]; w[d] ^= w[a]; w[d] = (w[d] << 16) | (w[d] >> 16);
            w[c] += w[d]; w[b] ^= w[c]; w[b] = (w[b] << 12) | (w[b] >> 20);
            w[a] += w[b]; w[d] ^= w[a]; w[d] = (w[d] << 8) | (w[d] >> 24);
            w[c] += w[d]; w[b] ^= w[c]; w[b] = (w[b] << 7) | (w[b] >> 25);
        }
    }
    for (int i = 0; i < 16; i++) {
        cc_store32(out + 4 * i, w[i] + x[i]);
    }
}

int crypto_stream_chacha20_xor(uint8_t *c, uint8_t *m, uint64_t mlen,
                               uint8_t *n, uint8_t *k) {
    uint32_t counter = 0;
    for (uint64_t off = 0; off < mlen; off += 64) {
        chacha_block(chacha_pad, k, n, counter);
        counter += 1;
        for (uint64_t i = 0; i < 64 && off + i < mlen; i++) {
            c[off + i] = m[off + i] ^ chacha_pad[i];
        }
    }
    return 0;
}
