/* Replica of OpenSSL's SSL_get_shared_sigalgs (Listing 1, §6.2.3):
 * the most severe PHT gadget Clou uncovered.  Line "shsigalgs =
 * s->shared_sigalgs[idx]" speculatively loads an out-of-bounds secret
 * into a pointer, and the following field accesses dereference it,
 * leaking the secret's value into the cache. */

struct SIGALG_LOOKUP {
    int hash;
    int sig;
    int sigandhash;
    uint32_t sigalg;
};

struct SSL {
    struct SIGALG_LOOKUP **shared_sigalgs;
    uint64_t shared_sigalgslen;
};

int SSL_get_shared_sigalgs(struct SSL *s, int idx, int *psign,
                           int *phash, int *psignhash,
                           uint8_t *rsig, uint8_t *rhash) {
    struct SIGALG_LOOKUP *shsigalgs;
    if (s->shared_sigalgs == 0
            || idx < 0 || idx >= (int)s->shared_sigalgslen
            || s->shared_sigalgslen > 0x7fffffff) {
        return 0;
    }
    shsigalgs = s->shared_sigalgs[idx];
    if (phash != 0) {
        *phash = shsigalgs->hash;
    }
    if (psign != 0) {
        *psign = shsigalgs->sig;
    }
    if (psignhash != 0) {
        *psignhash = shsigalgs->sigandhash;
    }
    if (rsig != 0) {
        *rsig = (uint8_t)(shsigalgs->sigalg & 0xff);
    }
    if (rhash != 0) {
        *rhash = (uint8_t)((shsigalgs->sigalg >> 8) & 0xff);
    }
    return (int)s->shared_sigalgslen;
}
