/* A crypto_secretbox-shaped workload (libsodium's secretbox: salsa20
 * stream + poly1305 tag + bounds checks), matching Table 2's
 * "secretbox" row (1 public function, ~12 after inlining). */

uint8_t stream_block[64];
uint8_t subkey[32];

static uint32_t rotl32(uint32_t x, uint32_t b) {
    return (x << b) | (x >> (32 - b));
}

static uint32_t load32(uint8_t *p) {
    return (uint32_t)p[0] | ((uint32_t)p[1] << 8)
         | ((uint32_t)p[2] << 16) | ((uint32_t)p[3] << 24);
}

static void store32(uint8_t *p, uint32_t v) {
    p[0] = (uint8_t)(v & 0xff);
    p[1] = (uint8_t)((v >> 8) & 0xff);
    p[2] = (uint8_t)((v >> 16) & 0xff);
    p[3] = (uint8_t)((v >> 24) & 0xff);
}

static void salsa20_core(uint8_t *out, uint8_t *in, uint8_t *key) {
    uint32_t x0 = 0x61707865;
    uint32_t x5 = 0x3320646e;
    uint32_t x10 = 0x79622d32;
    uint32_t x15 = 0x6b206574;
    uint32_t x1 = load32(key);
    uint32_t x2 = load32(key + 4);
    uint32_t x3 = load32(key + 8);
    uint32_t x4 = load32(key + 12);
    uint32_t x6 = load32(in);
    uint32_t x7 = load32(in + 4);
    uint32_t x8 = load32(in + 8);
    uint32_t x9 = load32(in + 12);
    uint32_t x11 = load32(key + 16);
    uint32_t x12 = load32(key + 20);
    uint32_t x13 = load32(key + 24);
    uint32_t x14 = load32(key + 28);
    for (int round = 0; round < 20; round += 2) {
        x4 ^= rotl32(x0 + x12, 7);
        x8 ^= rotl32(x4 + x0, 9);
        x12 ^= rotl32(x8 + x4, 13);
        x0 ^= rotl32(x12 + x8, 18);
        x9 ^= rotl32(x5 + x1, 7);
        x13 ^= rotl32(x9 + x5, 9);
        x1 ^= rotl32(x13 + x9, 13);
        x5 ^= rotl32(x1 + x13, 18);
        x14 ^= rotl32(x10 + x6, 7);
        x2 ^= rotl32(x14 + x10, 9);
        x6 ^= rotl32(x2 + x14, 13);
        x10 ^= rotl32(x6 + x2, 18);
        x3 ^= rotl32(x15 + x11, 7);
        x7 ^= rotl32(x3 + x15, 9);
        x11 ^= rotl32(x7 + x3, 13);
        x15 ^= rotl32(x11 + x7, 18);
    }
    store32(out, x0);
    store32(out + 4, x5);
    store32(out + 8, x10);
    store32(out + 12, x15);
    store32(out + 16, x6);
    store32(out + 20, x7);
    store32(out + 24, x8);
    store32(out + 28, x9);
}

static uint64_t poly1305_mac(uint8_t *m, uint64_t mlen, uint8_t *key) {
    uint64_t h0 = 0;
    uint64_t h1 = 0;
    uint64_t r0 = load32(key) & 0x3ffffff;
    uint64_t r1 = load32(key + 4) & 0x3ffff03;
    for (uint64_t i = 0; i + 16 <= mlen; i += 16) {
        h0 += load32(m + i) & 0x3ffffff;
        h1 += load32(m + i + 4) & 0x3ffffff;
        uint64_t d0 = h0 * r0 + h1 * (5 * r1);
        uint64_t d1 = h0 * r1 + h1 * r0;
        h0 = d0 & 0x3ffffff;
        h1 = (d1 + (d0 >> 26)) & 0x3ffffff;
    }
    return h0 ^ (h1 << 26);
}

int crypto_secretbox(uint8_t *c, uint8_t *m, uint64_t mlen,
                     uint8_t *n, uint8_t *k) {
    if (mlen < 32) {
        return -1;
    }
    salsa20_core(stream_block, n, k);
    for (uint64_t i = 0; i < mlen && i < 64; i++) {
        c[i] = m[i] ^ stream_block[i & 63];
    }
    uint64_t tag = poly1305_mac(c, mlen, stream_block);
    store32(c + 16, (uint32_t)(tag & 0xffffffff));
    store32(c + 20, (uint32_t)(tag >> 32));
    return 0;
}
