/* ssl3-digest-record-shaped workload: length-dependent digest over a
 * record, with table lookups and MAC finalization (Table 2's
 * "ssl13-digest" row). */

uint8_t md_state[64];
uint8_t mac_out[20];
uint32_t K256[64];

static uint32_t ror32(uint32_t x, uint32_t n) {
    return (x >> n) | (x << (32 - n));
}

static void sha_block(uint32_t *state, uint8_t *block) {
    uint32_t w[16];
    for (int i = 0; i < 16; i++) {
        w[i] = ((uint32_t)block[i * 4] << 24)
             | ((uint32_t)block[i * 4 + 1] << 16)
             | ((uint32_t)block[i * 4 + 2] << 8)
             | (uint32_t)block[i * 4 + 3];
    }
    uint32_t a = state[0];
    uint32_t b = state[1];
    uint32_t c = state[2];
    uint32_t d = state[3];
    uint32_t e = state[4];
    for (int i = 0; i < 16; i++) {
        uint32_t s1 = ror32(e, 6) ^ ror32(e, 11) ^ ror32(e, 25);
        uint32_t ch = (e & a) ^ ((~e) & b);
        uint32_t t1 = d + s1 + ch + K256[i] + w[i & 15];
        uint32_t s0 = ror32(a, 2) ^ ror32(a, 13) ^ ror32(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t t2 = s0 + maj;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
        e = e + t1;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
}

int ssl3_digest_record(uint8_t *record, uint64_t record_len,
                       uint8_t *mac, uint64_t *md_lookup,
                       uint64_t md_count) {
    uint32_t state[5];
    state[0] = 0x67452301;
    state[1] = 0xefcdab89;
    state[2] = 0x98badcfe;
    state[3] = 0x10325476;
    state[4] = 0xc3d2e1f0;
    if (record_len < 16) {
        return -1;
    }
    uint64_t padding = record[record_len - 1];
    if (padding > record_len) {
        return -1;
    }
    uint64_t data_len = record_len - padding - 1;
    for (uint64_t off = 0; off + 64 <= data_len; off += 64) {
        sha_block(state, record + off);
    }
    uint64_t md_idx = record[0];
    if (md_idx < md_count) {
        uint64_t entry = md_lookup[md_idx];
        state[0] ^= (uint32_t)entry;
    }
    for (int i = 0; i < 5; i++) {
        mac[i * 4] = (uint8_t)(state[i] >> 24);
        mac[i * 4 + 1] = (uint8_t)((state[i] >> 16) & 0xff);
        mac[i * 4 + 2] = (uint8_t)((state[i] >> 8) & 0xff);
        mac[i * 4 + 3] = (uint8_t)(state[i] & 0xff);
    }
    return 0;
}
