/* The Tiny Encryption Algorithm (Wheeler & Needham 1994), as analyzed
 * in Table 2 (suite "tea": 2 public functions). */

void tea_encrypt(uint32_t *v, uint32_t *k) {
    uint32_t v0 = v[0];
    uint32_t v1 = v[1];
    uint32_t sum = 0;
    uint32_t delta = 0x9e3779b9;
    for (int i = 0; i < 32; i++) {
        sum += delta;
        v0 += ((v1 << 4) + k[0]) ^ (v1 + sum) ^ ((v1 >> 5) + k[1]);
        v1 += ((v0 << 4) + k[2]) ^ (v0 + sum) ^ ((v0 >> 5) + k[3]);
    }
    v[0] = v0;
    v[1] = v1;
}

void tea_decrypt(uint32_t *v, uint32_t *k) {
    uint32_t v0 = v[0];
    uint32_t v1 = v[1];
    uint32_t delta = 0x9e3779b9;
    uint32_t sum = 0xc6ef3720;
    for (int i = 0; i < 32; i++) {
        v1 -= ((v0 << 4) + k[2]) ^ (v0 + sum) ^ ((v0 >> 5) + k[3]);
        v0 -= ((v1 << 4) + k[0]) ^ (v1 + sum) ^ ((v1 >> 5) + k[1]);
        sum -= delta;
    }
    v[0] = v0;
    v[1] = v1;
}
