/* curve25519-donna-shaped workload: 64-bit limb field arithmetic with
 * the inlining/size profile of Table 2's "donna" row (1 public
 * function, ~21 after inlining, ~900 LoC). */

static void fsum(uint64_t *output, uint64_t *in) {
    for (int i = 0; i < 10; i += 2) {
        output[i] = output[i] + in[i];
        output[i + 1] = output[i + 1] + in[i + 1];
    }
}

static void fdifference(uint64_t *output, uint64_t *in) {
    for (int i = 0; i < 10; i++) {
        output[i] = in[i] + 0x3fffffff * 8 - output[i];
    }
}

static void fscalar_product(uint64_t *output, uint64_t *in, uint64_t scalar) {
    for (int i = 0; i < 10; i++) {
        output[i] = in[i] * scalar;
    }
}

static void fproduct(uint64_t *out, uint64_t *in2, uint64_t *in) {
    for (int i = 0; i < 19; i++) {
        out[i] = 0;
    }
    for (int i = 0; i < 10; i++) {
        for (int j = 0; j < 10; j++) {
            out[i + j] += in2[i] * in[j];
        }
    }
}

static void freduce_degree(uint64_t *output) {
    for (int i = 8; i >= 0; i--) {
        output[i] += 19 * output[i + 10];
    }
}

static void freduce_coefficients(uint64_t *output) {
    output[10] = 0;
    for (int i = 0; i < 10; i += 2) {
        uint64_t over = output[i] >> 26;
        output[i] -= over << 26;
        output[i + 1] += over;
        over = output[i + 1] >> 25;
        output[i + 1] -= over << 25;
        output[i + 2] += over;
    }
    output[0] += 19 * output[10];
    output[10] = 0;
}

static void fmul(uint64_t *output, uint64_t *in, uint64_t *in2) {
    uint64_t t[19];
    fproduct(t, in, in2);
    freduce_degree(t);
    freduce_coefficients(t);
    for (int i = 0; i < 10; i++) {
        output[i] = t[i];
    }
}

static void fsquare(uint64_t *output, uint64_t *in) {
    fmul(output, in, in);
}

static void fexpand(uint64_t *output, uint8_t *input) {
    for (int i = 0; i < 10; i++) {
        uint64_t limb = 0;
        for (int j = 0; j < 4; j++) {
            limb = (limb << 8) | input[i * 3 + j];
        }
        output[i] = limb & 0x3ffffff;
    }
}

static void fcontract(uint8_t *output, uint64_t *input) {
    for (int i = 0; i < 10; i++) {
        uint64_t limb = input[i];
        output[i * 3] = (uint8_t)(limb & 0xff);
        output[i * 3 + 1] = (uint8_t)((limb >> 8) & 0xff);
        output[i * 3 + 2] = (uint8_t)((limb >> 16) & 0xff);
    }
}

static void swap_conditional(uint64_t *a, uint64_t *b, uint64_t iswap) {
    uint64_t swap = 0 - iswap;
    for (int i = 0; i < 10; i++) {
        uint64_t x = swap & (a[i] ^ b[i]);
        a[i] = a[i] ^ x;
        b[i] = b[i] ^ x;
    }
}

static void fmonty(uint64_t *x2, uint64_t *z2, uint64_t *x3, uint64_t *z3,
                   uint64_t *x, uint64_t *z, uint64_t *xprime,
                   uint64_t *zprime, uint64_t *qmqp) {
    uint64_t origx[10];
    uint64_t origxprime[10];
    uint64_t zzz[19];
    uint64_t xx[19];
    uint64_t zz[19];
    uint64_t xxprime[19];
    uint64_t zzprime[19];
    for (int i = 0; i < 10; i++) {
        origx[i] = x[i];
    }
    fsum(x, z);
    fdifference(z, origx);
    for (int i = 0; i < 10; i++) {
        origxprime[i] = xprime[i];
    }
    fsum(xprime, zprime);
    fdifference(zprime, origxprime);
    fproduct(xxprime, xprime, z);
    fproduct(zzprime, x, zprime);
    freduce_degree(xxprime);
    freduce_coefficients(xxprime);
    freduce_degree(zzprime);
    freduce_coefficients(zzprime);
    for (int i = 0; i < 10; i++) {
        origxprime[i] = xxprime[i];
    }
    fsum(xxprime, zzprime);
    fdifference(zzprime, origxprime);
    fsquare(x3, xxprime);
    fsquare(zzz, zzprime);
    fproduct(z3, zzz, qmqp);
    freduce_degree(z3);
    freduce_coefficients(z3);
    fsquare(xx, x);
    fsquare(zz, z);
    fproduct(x2, xx, zz);
    freduce_degree(x2);
    freduce_coefficients(x2);
    fdifference(zz, xx);
    fscalar_product(zzz, zz, 121665);
    freduce_coefficients(zzz);
    fsum(zzz, xx);
    fproduct(z2, zz, zzz);
    freduce_degree(z2);
    freduce_coefficients(z2);
}

static void cmult(uint64_t *resultx, uint64_t *resultz,
                  uint8_t *n, uint64_t *q) {
    uint64_t a[19];
    uint64_t b[19];
    uint64_t c[19];
    uint64_t d[19];
    uint64_t e[19];
    uint64_t f[19];
    uint64_t g[19];
    uint64_t h[19];
    for (int i = 0; i < 19; i++) {
        a[i] = 0; b[i] = 0; c[i] = 0; d[i] = 0;
        e[i] = 0; f[i] = 0; g[i] = 0; h[i] = 0;
    }
    b[0] = 1;
    c[0] = 1;
    for (int i = 0; i < 10; i++) {
        a[i] = q[i];
    }
    for (int i = 0; i < 2; i++) {
        uint8_t byte = n[31 - i];
        for (int j = 0; j < 2; j++) {
            uint64_t bit = (byte >> (7 - j)) & 1;
            swap_conditional(a, b, bit);
            swap_conditional(c, d, bit);
            fmonty(e, f, g, h, a, c, b, d, q);
            swap_conditional(e, g, bit);
            swap_conditional(f, h, bit);
            for (int m = 0; m < 19; m++) {
                a[m] = e[m]; c[m] = f[m]; b[m] = g[m]; d[m] = h[m];
            }
        }
    }
    for (int i = 0; i < 10; i++) {
        resultx[i] = a[i];
        resultz[i] = c[i];
    }
}

static void crecip(uint64_t *out, uint64_t *z) {
    uint64_t z2[10];
    uint64_t t0[10];
    uint64_t t1[10];
    fsquare(z2, z);
    fsquare(t1, z2);
    fsquare(t0, t1);
    fmul(out, t0, z);
    fmul(t0, out, z2);
    fsquare(t1, t0);
    fmul(out, t1, t0);
}

int curve25519_donna(uint8_t *mypublic, uint8_t *secret, uint8_t *basepoint) {
    uint64_t bp[10];
    uint64_t x[10];
    uint64_t z[11];
    uint64_t zmone[10];
    uint8_t e[32];
    for (int i = 0; i < 32; i++) {
        e[i] = secret[i];
    }
    e[0] &= 248;
    e[31] &= 127;
    e[31] |= 64;
    fexpand(bp, basepoint);
    cmult(x, z, e, bp);
    crecip(zmone, z);
    fmul(z, x, zmone);
    fcontract(mypublic, z);
    return 0;
}
