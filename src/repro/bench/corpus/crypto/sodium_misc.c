/* A libsodium-shaped collection of public utility functions of varying
 * sizes, used for the per-function runtime scatter of Fig. 8. */

uint8_t scratch[4096];
uint8_t table_a[256];
uint8_t table_b[65536];

int sodium_memcmp(uint8_t *b1, uint8_t *b2, size_t len) {
    uint8_t d = 0;
    for (size_t i = 0; i < len; i++) {
        d |= b1[i] ^ b2[i];
    }
    return (1 & ((d - 1) >> 8)) - 1;
}

void sodium_memzero(uint8_t *pnt, size_t len) {
    for (size_t i = 0; i < len; i++) {
        pnt[i] = 0;
    }
}

void sodium_increment(uint8_t *n, size_t nlen) {
    uint32_t c = 1;
    for (size_t i = 0; i < nlen; i++) {
        c += n[i];
        n[i] = (uint8_t)(c & 0xff);
        c >>= 8;
    }
}

void sodium_add(uint8_t *a, uint8_t *b, size_t len) {
    uint32_t c = 0;
    for (size_t i = 0; i < len; i++) {
        c += (uint32_t)a[i] + (uint32_t)b[i];
        a[i] = (uint8_t)(c & 0xff);
        c >>= 8;
    }
}

int sodium_is_zero(uint8_t *n, size_t nlen) {
    uint8_t d = 0;
    for (size_t i = 0; i < nlen; i++) {
        d |= n[i];
    }
    return 1 & ((d - 1) >> 8);
}

int crypto_verify_16(uint8_t *x, uint8_t *y) {
    uint32_t d = 0;
    for (int i = 0; i < 16; i++) {
        d |= x[i] ^ y[i];
    }
    return (1 & ((d - 1) >> 8)) - 1;
}

int crypto_verify_32(uint8_t *x, uint8_t *y) {
    uint32_t d = 0;
    for (int i = 0; i < 32; i++) {
        d |= x[i] ^ y[i];
    }
    return (1 & ((d - 1) >> 8)) - 1;
}

uint32_t sodium_hash_quick(uint8_t *in, size_t inlen) {
    uint32_t h = 2166136261;
    for (size_t i = 0; i < inlen; i++) {
        h = (h ^ in[i]) * 16777619;
    }
    return h;
}

/* A bounds-checked table lookup: the Spectre v1 shape embedded in a
 * utility routine (the kind of gadget Clou flags in libsodium). */
uint8_t sodium_lookup(size_t idx, size_t limit) {
    if (idx < limit && limit <= 256) {
        return table_b[table_a[idx] * 256];
    }
    return 0;
}

void sodium_stream_xor(uint8_t *out, uint8_t *in, size_t len, uint8_t *pad) {
    for (size_t i = 0; i < len; i++) {
        out[i] = in[i] ^ pad[i & 63];
    }
}

int sodium_pad_check(uint8_t *buf, size_t padded_len) {
    if (padded_len == 0) {
        return -1;
    }
    uint8_t pad = buf[padded_len - 1];
    if (pad >= padded_len) {
        return -1;
    }
    uint8_t bad = 0;
    for (size_t i = 0; i < pad; i++) {
        bad |= buf[padded_len - 2 - i] ^ pad;
    }
    return bad == 0 ? 0 : -1;
}

uint64_t sodium_load64(uint8_t *src) {
    uint64_t w = 0;
    for (int i = 7; i >= 0; i--) {
        w = (w << 8) | src[i];
    }
    return w;
}

void sodium_store64(uint8_t *dst, uint64_t w) {
    for (int i = 0; i < 8; i++) {
        dst[i] = (uint8_t)(w & 0xff);
        w >>= 8;
    }
}

uint32_t sodium_rotate_mix(uint32_t a, uint32_t b) {
    uint32_t x = a;
    for (int i = 0; i < 8; i++) {
        x = ((x << 7) | (x >> 25)) + b;
        x ^= (x >> 3);
    }
    return x;
}

int sodium_compare(uint8_t *b1, uint8_t *b2, size_t len) {
    uint8_t gt = 0;
    uint8_t eq = 1;
    size_t i = len;
    while (i != 0) {
        i--;
        gt |= ((b2[i] - b1[i]) >> 7) & eq;
        eq &= ((b2[i] ^ b1[i]) - 1) >> 7;
    }
    return (int)(gt + gt + eq) - 1;
}

void sodium_chacha_quarter(uint32_t *st) {
    uint32_t a = st[0];
    uint32_t b = st[1];
    uint32_t c = st[2];
    uint32_t d = st[3];
    for (int i = 0; i < 10; i++) {
        a += b; d ^= a; d = (d << 16) | (d >> 16);
        c += d; b ^= c; b = (b << 12) | (b >> 20);
        a += b; d ^= a; d = (d << 8) | (d >> 24);
        c += d; b ^= c; b = (b << 7) | (b >> 25);
    }
    st[0] = a;
    st[1] = b;
    st[2] = c;
    st[3] = d;
}

/* A v1.1-flavoured combined gadget (Spectre v1.1 + v4), the "less
 * severe UDT" class found in 116 libsodium functions (§6.2.3). */
uint64_t message_slots[16];
uint64_t slot_count = 16;
uint8_t slot_data[256 * 512];

uint8_t sodium_slot_read(size_t slot, size_t val) {
    if (slot < slot_count) {
        message_slots[slot] = val;
    }
    return slot_data[message_slots[0]];
}
