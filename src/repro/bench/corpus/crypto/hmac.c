/* HMAC-SHA-shaped keyed MAC: nested hash invocations exercise the
 * inliner on a call tree two levels deep. */

uint32_t H256[8];

static uint32_t hr32(uint32_t x, uint32_t n) {
    return (x >> n) | (x << (32 - n));
}

static void hash_compress(uint32_t *state, uint8_t *block) {
    uint32_t a = state[0];
    uint32_t b = state[1];
    uint32_t c = state[2];
    uint32_t d = state[3];
    for (int i = 0; i < 16; i++) {
        uint32_t word = ((uint32_t)block[i * 4] << 24)
                      | ((uint32_t)block[i * 4 + 1] << 16)
                      | ((uint32_t)block[i * 4 + 2] << 8)
                      | (uint32_t)block[i * 4 + 3];
        uint32_t t = d + (hr32(a, 2) ^ hr32(b, 13)) + (a & b) + word;
        d = c;
        c = b;
        b = a;
        a = t;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
}

static void hash_full(uint8_t *out, uint8_t *in, uint64_t inlen) {
    uint32_t state[4];
    state[0] = 0x6a09e667;
    state[1] = 0xbb67ae85;
    state[2] = 0x3c6ef372;
    state[3] = 0xa54ff53a;
    for (uint64_t off = 0; off + 64 <= inlen; off += 64) {
        hash_compress(state, in + off);
    }
    for (int i = 0; i < 4; i++) {
        out[i * 4] = (uint8_t)(state[i] >> 24);
        out[i * 4 + 1] = (uint8_t)((state[i] >> 16) & 0xff);
        out[i * 4 + 2] = (uint8_t)((state[i] >> 8) & 0xff);
        out[i * 4 + 3] = (uint8_t)(state[i] & 0xff);
    }
}

uint8_t hmac_scratch[192];

int crypto_auth_hmac(uint8_t *out, uint8_t *in, uint64_t inlen,
                     uint8_t *key) {
    uint8_t pad[64];
    for (int i = 0; i < 64; i++) {
        pad[i] = key[i & 31] ^ 0x36;
    }
    for (int i = 0; i < 64; i++) {
        hmac_scratch[i] = pad[i];
    }
    for (uint64_t i = 0; i < inlen && i < 64; i++) {
        hmac_scratch[64 + i] = in[i];
    }
    uint8_t inner[16];
    hash_full(inner, hmac_scratch, 128);
    for (int i = 0; i < 64; i++) {
        hmac_scratch[i] = key[i & 31] ^ 0x5c;
    }
    for (int i = 0; i < 16; i++) {
        hmac_scratch[64 + i] = inner[i];
    }
    hash_full(out, hmac_scratch, 128);
    return 0;
}
