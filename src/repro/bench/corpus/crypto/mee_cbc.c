/* MAC-then-encrypt CBC decryption-shaped workload (Table 2's "mee-cbc"
 * row): AES-ish block loop, padding check, MAC compare. */

uint8_t sbox[256];
uint8_t round_keys[176];
uint8_t iv_state[16];

static void aes_block_decrypt(uint8_t *block, uint8_t *keys) {
    uint8_t state[16];
    for (int i = 0; i < 16; i++) {
        state[i] = block[i] ^ keys[160 + i];
    }
    for (int round = 9; round > 0; round--) {
        for (int i = 0; i < 16; i++) {
            state[i] = sbox[state[i]];
        }
        for (int i = 0; i < 16; i++) {
            state[i] ^= keys[round * 16 + i];
        }
    }
    for (int i = 0; i < 16; i++) {
        block[i] = sbox[state[i]] ^ keys[i];
    }
}

static int mac_verify(uint8_t *data, uint64_t len, uint8_t *expected) {
    uint32_t acc = 0x811c9dc5;
    for (uint64_t i = 0; i < len; i++) {
        acc = (acc ^ data[i]) * 0x01000193;
    }
    int diff = 0;
    for (int i = 0; i < 4; i++) {
        diff |= expected[i] ^ (uint8_t)(acc >> (i * 8));
    }
    return diff == 0;
}

int mee_cbc_decrypt(uint8_t *ct, uint64_t ct_len, uint8_t *pt,
                    uint8_t *mac, uint64_t *out_len) {
    if (ct_len < 32 || (ct_len & 15) != 0) {
        return -1;
    }
    for (uint64_t block = 0; block * 16 < ct_len; block++) {
        for (int i = 0; i < 16; i++) {
            pt[block * 16 + i] = ct[block * 16 + i];
        }
        aes_block_decrypt(pt + block * 16, round_keys);
        for (int i = 0; i < 16; i++) {
            pt[block * 16 + i] ^= iv_state[i];
            iv_state[i] = ct[block * 16 + i];
        }
    }
    uint64_t pad = pt[ct_len - 1];
    if (pad > 16 || pad >= ct_len) {
        return -1;
    }
    uint64_t msg_len = ct_len - pad - 1 - 4;
    if (!mac_verify(pt, msg_len, mac)) {
        return -1;
    }
    *out_len = msg_len;
    return 0;
}
