"""Benchmark corpus and harnesses reproducing the paper's evaluation."""

from repro.bench.suites import (
    BenchCase,
    all_cases,
    all_litmus,
    by_name,
    crypto_cases,
    litmus_fwd,
    litmus_new,
    litmus_pht,
    litmus_stl,
)

__all__ = [
    "BenchCase",
    "all_cases",
    "all_litmus",
    "by_name",
    "crypto_cases",
    "litmus_fwd",
    "litmus_new",
    "litmus_pht",
    "litmus_stl",
]
