"""The benchmark corpus registry (§6).

Mirrors the paper's evaluation inputs: 15 Spectre v1 (PHT) tests, 14
Spectre v4 (STL) tests, 5 Spectre v1.1 (FWD) tests, 2 NEW tests, and the
crypto workloads of Table 2.  Each case records the intent annotations
the paper compares against (which transmitter classes the benchmark
author intended, and whether the case was labeled secure).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

CORPUS_DIR = Path(__file__).parent / "corpus"


@dataclass(frozen=True)
class BenchCase:
    """One benchmark program plus its ground-truth annotations."""

    name: str
    suite: str                 # 'pht' | 'stl' | 'fwd' | 'new' | crypto name
    path: Path
    engines: tuple[str, ...]   # engines the paper runs on this suite
    intended_leaky: bool = True
    intended_classes: frozenset[str] = frozenset({"udt"})
    notes: str = ""

    @property
    def source(self) -> str:
        return self.path.read_text()


def _case(suite: str, stem: str, engines: tuple[str, ...],
          leaky: bool = True, classes: frozenset[str] = frozenset({"udt"}),
          notes: str = "") -> BenchCase:
    return BenchCase(
        name=stem,
        suite=suite,
        path=CORPUS_DIR / suite / f"{stem}.c",
        engines=engines,
        intended_leaky=leaky,
        intended_classes=classes,
        notes=notes,
    )


def litmus_pht() -> list[BenchCase]:
    """15 Spectre v1 benchmarks (Kocher's variants)."""
    classes = {
        "pht01": {"udt"}, "pht02": {"udt"}, "pht03": {"udt"},
        "pht04": {"udt"}, "pht05": {"udt"}, "pht06": {"udt"},
        "pht07": {"udt"}, "pht08": {"udt"}, "pht09": {"udt"},
        "pht10": {"ct"}, "pht11": {"udt"}, "pht12": {"udt"},
        "pht13": {"udt"}, "pht14": {"ct"}, "pht15": {"udt"},
    }
    return [
        _case("pht", stem, ("pht",), classes=frozenset(classes[stem]))
        for stem in sorted(classes)
    ]


def litmus_stl() -> list[BenchCase]:
    """14 Spectre v4 benchmarks (Binsec/Haunted's STL suite shape)."""
    cases = []
    secure = {"stl10", "stl14"}
    mislabeled_secure = {"stl06", "stl13"}  # §6.1: Clou finds real leaks
    for i in range(1, 15):
        stem = f"stl{i:02d}"
        leaky = stem not in secure
        notes = ""
        if stem in mislabeled_secure:
            notes = ("intended secure, but Clang -O0 stack traffic makes "
                     "it bypassable (§6.1)")
        cases.append(_case(
            "stl", stem, ("stl",), leaky=leaky,
            classes=frozenset({"dt", "udt"}) if leaky else frozenset(),
            notes=notes,
        ))
    return cases


def litmus_fwd() -> list[BenchCase]:
    """5 Spectre v1.1 benchmarks (all three engines run, as in Table 2)."""
    specs = {
        "fwd01": (frozenset({"udt"}),
                  "Listing FWD01 (§6.1): guarded OOB store forwarded to a "
                  "dependent pointer load"),
        "fwd02": (frozenset({"udt"}),
                  "Listing FWD02 (§6.1): same-block OOB store feeding a "
                  "table-indexed transmit"),
        "fwd03": (frozenset({"udt"}),
                  "Listing FWD03 (§6.1): corrupted index table chained "
                  "through a second lookup"),
        "fwd04": (frozenset({"uct"}),
                  "Listing FWD04 (§6.1): corrupted flag controls a branch "
                  "(control transmitter)"),
        "fwd05": (frozenset({"udt", "uct"}),
                  "Listing FWD05 (§6.1): length-field overwrite read by "
                  "both the guard and the guarded access"),
    }
    return [
        _case("fwd", stem, ("pht", "stl", "fwd"),
              classes=classes, notes=notes)
        for stem, (classes, notes) in sorted(specs.items())
    ]


def litmus_new() -> list[BenchCase]:
    """The paper's 2 NEW Spectre v1.1-style benchmarks (§6.1)."""
    return [
        _case("new", "new01", ("pht", "stl", "fwd"),
              classes=frozenset({"udt"}),
              notes="Listing NEW01 (§6.1): speculative write of a secret to "
                    "a pointer slot; Pitchfork misses it"),
        _case("new", "new02", ("pht", "stl", "fwd"),
              classes=frozenset({"dt"}),
              notes="Listing NEW02 (§6.1): in-bounds store forwards a "
                    "transiently computed secret to the transmit"),
    ]


def crypto_cases() -> list[BenchCase]:
    """The crypto workloads of Table 2 (replica sources, see DESIGN.md)."""
    return [
        _case("crypto", "tea", ("pht", "stl"), leaky=False,
              classes=frozenset(),
              notes="Clou flags 0 UDT/UCT in tea (Table 2)"),
        _case("crypto", "donna", ("pht", "stl"), leaky=False,
              classes=frozenset(),
              notes="0 universal transmitters under worst-case alias "
                    "analysis (Table 2 parenthesized counts)"),
        _case("crypto", "secretbox", ("pht", "stl"), leaky=False,
              classes=frozenset()),
        _case("crypto", "ssl3_digest", ("pht", "stl"), leaky=True,
              classes=frozenset({"dt"})),
        _case("crypto", "mee_cbc", ("pht", "stl"), leaky=True,
              classes=frozenset({"dt"})),
        _case("crypto", "sigalgs", ("pht",), leaky=True,
              classes=frozenset({"udt"}),
              notes="Listing 1: the SSL_get_shared_sigalgs PHT gadget"),
        _case("crypto", "sodium_misc", ("pht", "stl"), leaky=True,
              classes=frozenset({"udt"})),
        _case("crypto", "chacha20", ("pht", "stl"), leaky=False,
              classes=frozenset()),
        _case("crypto", "poly1305", ("pht", "stl"), leaky=False,
              classes=frozenset()),
        _case("crypto", "hmac", ("pht", "stl"), leaky=False,
              classes=frozenset()),
    ]


def all_litmus() -> list[BenchCase]:
    return [*litmus_pht(), *litmus_stl(), *litmus_fwd(), *litmus_new()]


def all_cases() -> list[BenchCase]:
    return [*all_litmus(), *crypto_cases()]


def by_name(name: str) -> BenchCase:
    for case in all_cases():
        if case.name == name:
            return case
    raise KeyError(f"no benchmark named {name!r}")
