"""Figure 8 regeneration: per-function serial runtime vs. S-AEG size.

The paper's Fig. 8 is a log-log scatter of Clou's per-public-function
runtime against S-AEG node count for the libsodium analysis, for both
engines.  We reproduce the series over the libsodium-replica functions,
the crypto corpus, and the synthetic scaling corpus (which extends the
x-axis the way libsodium's largest functions do).

Run directly: ``python -m repro.bench.fig8``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.bench.suites import crypto_cases
from repro.bench.synthetic import scaling_corpus
from repro.clou import SAEG, ClouConfig, ENGINES, build_acfg
from repro.minic import compile_c


@dataclass(frozen=True)
class Fig8Point:
    function: str
    engine: str
    aeg_size: int
    runtime: float


def _functions() -> list[tuple[str, str, str]]:
    """(source_name, function_name, source) triples for every function."""
    triples = []
    for case in crypto_cases():
        module = compile_c(case.source, name=case.name)
        for function in module.public_functions():
            triples.append((case.name, function.name, case.source))
    for name, source in scaling_corpus():
        triples.append((name, name, source))
    return triples


def collect(engines: tuple[str, ...] = ("pht", "stl"),
            config: ClouConfig | None = None) -> list[Fig8Point]:
    config = config or ClouConfig(timeout_seconds=120.0)
    points = []
    module_cache: dict[str, object] = {}
    for source_name, function_name, source in _functions():
        module = module_cache.get(source_name)
        if module is None:
            module = compile_c(source, name=source_name)
            module_cache[source_name] = module
        for engine in engines:
            started = time.monotonic()
            acfg = build_acfg(module, function_name)
            aeg = SAEG(acfg.function)
            ENGINES[engine](aeg, config).run()
            elapsed = time.monotonic() - started
            points.append(Fig8Point(
                function=function_name,
                engine=engine,
                aeg_size=aeg.size,
                runtime=elapsed,
            ))
    return points


def loglog_slope(points: list[Fig8Point]) -> float:
    """Least-squares slope of log(runtime) against log(aeg_size) — the
    scaling exponent of the Fig. 8 trend."""
    xs = [math.log(max(p.aeg_size, 1)) for p in points]
    ys = [math.log(max(p.runtime, 1e-6)) for p in points]
    n = len(points)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        return 0.0
    return sum((x - mean_x) * (y - mean_y)
               for x, y in zip(xs, ys)) / denominator


def render(points: list[Fig8Point]) -> str:
    lines = [
        f"{'function':24s} {'engine':6s} {'S-AEG size':>10s} {'runtime (s)':>12s}",
        "-" * 58,
    ]
    for point in sorted(points, key=lambda p: (p.engine, p.aeg_size)):
        lines.append(
            f"{point.function:24s} {point.engine:6s} "
            f"{point.aeg_size:10d} {point.runtime:12.4f}"
        )
    for engine in sorted({p.engine for p in points}):
        subset = [p for p in points if p.engine == engine]
        lines.append(
            f"log-log scaling exponent ({engine}): "
            f"{loglog_slope(subset):.2f}"
        )
    return "\n".join(lines)


def main() -> None:
    print("Figure 8 reproduction — runtime vs. S-AEG node count")
    print(render(collect()))


if __name__ == "__main__":
    main()
