"""Synthetic crypto-like function generator for scaling studies (Fig. 8).

Fig. 8 plots per-function serial runtime against S-AEG node count over
roughly four decades of function size.  The replica corpus alone cannot
span that range, so this module generates crypto-shaped functions —
rounds of arithmetic over state arrays, bounds-checked table lookups,
occasional secret-dependent stores — of parameterized size.

Generation is deterministic per (name, size, seed).
"""

from __future__ import annotations

import random
import zlib


def _stable_seed(*parts) -> int:
    """A PYTHONHASHSEED-independent seed for :class:`random.Random`.

    ``tuple.__hash__`` over strings is randomized per process, which
    made "deterministic" corpora differ between runs (and made the
    gadget-count assertions in the scale benchmarks flaky).
    """
    return zlib.crc32(repr(parts).encode())

_HEADER = """
uint8_t sbox_{name}[256];
uint8_t table_{name}[65536];
uint64_t limit_{name} = 64;
uint8_t out_{name};
"""

_OPS = ["+", "^", "*", "|", "&"]


def generate_function(name: str, rounds: int, seed: int = 7,
                      lookups_per_round: int = 1,
                      multipliers: tuple[int, ...] = (64, 256, 512),
                      fwd_gadget_period: int = 0) -> str:
    """One public function with ~``rounds`` round bodies.

    ``multipliers`` scales the table-lookup index: with the 65536-entry
    table, ``m <= 256`` keeps the masked lookup ``sbox[x1 & 255] * m``
    provably in bounds (``255 * 256 < 65536``), so range pruning may
    skip it.  ``m = 512`` instead emits the genuine Spectre v1 shape
    ``table[sbox[x1] * 512]`` guarded only by the bounds check — the
    access is transiently unbounded, so the UDT survives pruning.  The
    default mix yields both prunable and genuine gadgets.

    ``fwd_gadget_period = n > 0`` additionally emits, every ``n``-th
    round, the Spectre v1.1 shape: a bounds-checked store through an
    attacker-controlled index followed by a load that forwards the
    (transiently OOB) stored value into a transmit — the gadget Clou-FWD
    targets.  The default ``0`` emits none and draws nothing from the
    RNG, so pre-existing corpora stay byte-identical.
    """
    rng = random.Random(_stable_seed(seed, name, rounds))
    lines = [_HEADER.format(name=name)]
    lines.append(
        f"uint64_t {name}(uint64_t x0, uint64_t x1, uint8_t *msg, "
        "uint64_t len) {"
    )
    lines.append("    uint64_t state[8];")
    lines.append("    for (int i = 0; i < 8; i++) { state[i] = x0 + i; }")
    for round_index in range(rounds):
        a = rng.randrange(8)
        b = rng.randrange(8)
        op = rng.choice(_OPS)
        shift = rng.randrange(1, 31)
        lines.append(
            f"    state[{a}] = (state[{a}] {op} state[{b}]) "
            f"^ (state[{b}] >> {shift});"
        )
        if round_index % 3 == 0:
            lines.append(
                f"    state[{b}] += msg[{rng.randrange(0, 64)}];"
            )
        if round_index % max(1, 5 // lookups_per_round) == 0:
            # A bounds-checked, data-dependent table lookup: the Spectre
            # v1 shape that makes these functions interesting to Clou.
            multiplier = rng.choice(multipliers)
            index = "x1 & 255" if multiplier <= 256 else "x1"
            lines.append(f"    if (x1 < limit_{name}) {{")
            lines.append(
                f"        state[{a}] ^= "
                f"table_{name}[sbox_{name}[{index}] * {multiplier}];"
            )
            lines.append("    }")
        if fwd_gadget_period and round_index % fwd_gadget_period == 0:
            # The Spectre v1.1 shape: the guarded store's index is
            # attacker-controlled, so the store transiently lands OOB and
            # the fixed-slot load forwards the corrupted value.
            slot = rng.randrange(0, 8)
            lines.append(f"    if (x0 < limit_{name}) {{")
            lines.append(
                f"        sbox_{name}[x0] = (uint8_t)state[{slot}];")
            lines.append("    }")
            lines.append(
                f"    state[{slot}] ^= "
                f"table_{name}[sbox_{name}[0] * 512];"
            )
    lines.append("    uint64_t acc = 0;")
    lines.append("    for (int i = 0; i < 8; i++) { acc ^= state[i]; }")
    lines.append(f"    out_{name} = (uint8_t)(acc & 0xff);")
    lines.append("    return acc;")
    lines.append("}")
    return "\n".join(lines)


def scaling_corpus(sizes: list[int] | None = None,
                   seed: int = 7) -> list[tuple[str, str]]:
    """(name, source) pairs spanning the Fig. 8 size range."""
    sizes = sizes or [2, 5, 10, 25, 60, 140, 320, 700]
    corpus = []
    for size in sizes:
        name = f"synth_{size}"
        corpus.append((name, generate_function(name, rounds=size, seed=seed)))
    return corpus


def bounded_corpus(sizes: list[int] | None = None,
                   seed: int = 7) -> list[tuple[str, str]]:
    """(name, source) pairs whose table lookups are all mask-bounded.

    Every data-dependent lookup has the shape
    ``table[sbox[x1 & 255] * m]`` with ``m <= 256``, so the interval
    analysis can prove each access in bounds on every A-CFG path —
    including mispredicted ones.  With ``enable_range_pruning`` these
    functions produce no universal (UDT/UCT) PHT transmitters and far
    fewer windowed searches; with pruning off, each lookup is a UDT
    candidate.  The ablation benchmark uses this corpus to measure the
    pruning win.
    """
    sizes = sizes or [6, 14, 30]
    corpus = []
    for size in sizes:
        name = f"bounded_{size}"
        corpus.append((name, generate_function(
            name, rounds=size, seed=seed, lookups_per_round=2,
            multipliers=(64, 256))))
    return corpus


def fwd_corpus(sizes: list[int] | None = None,
               seed: int = 7) -> list[tuple[str, str]]:
    """(name, source) pairs seeded with Spectre v1.1 forward gadgets.

    Every fourth round carries the guarded-OOB-store / forwarding-load
    pair, so Clou-FWD finds library-scale work beyond the 7 litmus
    programs.  Kept separate from :func:`scaling_corpus` so the Fig. 8
    corpus stays byte-identical.
    """
    sizes = sizes or [4, 10, 24]
    corpus = []
    for size in sizes:
        name = f"fwdsynth_{size}"
        corpus.append((name, generate_function(
            name, rounds=size, seed=seed, fwd_gadget_period=4)))
    return corpus


def openssl_like_source(n_functions: int = 48, seed: int = 23,
                        fwd_gadget_period: int = 0) -> str:
    """One large translation unit with many public functions of mixed
    sizes — the per-file shape of the OpenSSL row in Table 2 (Clou
    analyzes each public function under a per-file time budget; the
    paper completes 90% of functions for PHT).

    Function sizes follow a heavy-tailed profile: mostly small utility
    functions with a few large record-processing ones, like a TLS
    library.
    """
    rng = random.Random(seed)
    parts = []
    for index in range(n_functions):
        # Heavy tail: a few big functions dominate, most are small.
        roll = rng.random()
        if roll < 0.70:
            rounds = rng.randrange(2, 12)
        elif roll < 0.93:
            rounds = rng.randrange(12, 60)
        else:
            rounds = rng.randrange(60, 220)
        parts.append(generate_function(f"ossl_fn_{index:03d}", rounds,
                                       seed=seed + index,
                                       fwd_gadget_period=fwd_gadget_period))
    return "\n\n".join(parts)
