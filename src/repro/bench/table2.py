"""Table 2 regeneration: Clou vs. the BH baseline on every suite (§6).

For each application row the harness reports, per tool:

- serial analysis time,
- transmitter counts by class for Clou (DT/CT/UDT/UCT), or a flat bug
  count for BH (which does not classify, §6).

Absolute times differ from the paper's Xeon testbed; the *shape*
invariants the benchmarks assert are: Clou detects all intended litmus
leakage, classifies it, completes the crypto corpus, and finds the
Listing 1 gadget; BH reports fewer, unclassified bugs and times out on
the larger functions.

Run directly: ``python -m repro.bench.table2``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.bh import bh_analyze_source
from repro.bench.suites import (
    BenchCase,
    crypto_cases,
    litmus_fwd,
    litmus_new,
    litmus_pht,
    litmus_stl,
)
from repro.clou import ClouConfig
from repro.lcm.taxonomy import TransmitterClass as TC
from repro.sched import AnalysisRequest, ClouSession

# Table 2 configuration: Clou uses ROB/LSQ 250/50; BH 200/20 (§6).
CLOU_TABLE2_CONFIG = ClouConfig(rob_size=250, lsq_size=50, window_size=250,
                                timeout_seconds=120.0)
BH_TIMEOUT_SECONDS = 20.0

# BH only models the two classic engines (§6): no FWD/PSF baseline rows.
BH_ENGINES = frozenset({"pht", "stl"})


def _suite_engines(cases: list[BenchCase]) -> tuple[str, ...]:
    """Engines to run for a suite: the union of its cases' engine lists,
    in first-appearance order."""
    return tuple(dict.fromkeys(
        engine for case in cases for engine in case.engines))


@dataclass
class ToolRow:
    tool: str                    # 'clou-pht' | 'clou-stl' | 'bh-pht' | 'bh-stl'
    time_seconds: float
    counts: dict[str, int] = field(default_factory=dict)  # DT/CT/UDT/UCT
    worst_case: dict[str, int] = field(default_factory=dict)  # UDT/UCT (§6.2.2)
    bug_count: int | None = None  # BH: flat count
    timed_out: bool = False

    def render_bugs(self) -> str:
        if self.bug_count is not None:
            return str(self.bug_count)

        def cell(key: str) -> str:
            count = self.counts.get(key, 0)
            if key in ("UDT", "UCT") and count:
                # Table 2's parenthesized worst-case-alias survivors.
                return f"{count}({self.worst_case.get(key, 0)})"
            return str(count)

        return "/".join(cell(key) for key in ("DT", "CT", "UDT", "UCT"))


@dataclass
class Table2Row:
    suite: str
    cases: int
    public_functions: int
    loc: int
    tools: list[ToolRow] = field(default_factory=list)


def _clou_tool_row(cases: list[BenchCase], engine: str,
                   config: ClouConfig = CLOU_TABLE2_CONFIG) -> ToolRow:
    from repro.clou.postprocess import postprocess

    session = ClouSession(config=config, jobs=1, cache=False)
    started = time.monotonic()
    counts = {"DT": 0, "CT": 0, "UDT": 0, "UCT": 0}
    worst_case = {"UDT": 0, "UCT": 0}
    timed_out = False
    for case in cases:
        report = session.analyze(AnalysisRequest.analyze(case.source, engine=engine, name=case.name))
        totals = report.totals()
        counts["DT"] += totals[TC.DATA]
        counts["CT"] += totals[TC.CONTROL]
        counts["UDT"] += totals[TC.UNIVERSAL_DATA]
        counts["UCT"] += totals[TC.UNIVERSAL_CONTROL]
        for function_report in report.functions:
            result = postprocess(function_report)
            worst_case["UDT"] += result.worst_case_alias_count(
                TC.UNIVERSAL_DATA)
            worst_case["UCT"] += result.worst_case_alias_count(
                TC.UNIVERSAL_CONTROL)
        timed_out |= any(f.timed_out for f in report.functions)
    return ToolRow(
        tool=f"clou-{engine}",
        time_seconds=time.monotonic() - started,
        counts=counts,
        worst_case=worst_case,
        timed_out=timed_out,
    )


def _bh_tool_row(cases: list[BenchCase], engine: str,
                 timeout: float = BH_TIMEOUT_SECONDS) -> ToolRow:
    started = time.monotonic()
    bugs = 0
    timed_out = False
    for case in cases:
        for report in bh_analyze_source(case.source, engine=engine,
                                        timeout_seconds=timeout,
                                        name=case.name):
            bugs += report.bug_count
            timed_out |= report.timed_out
    return ToolRow(
        tool=f"bh-{engine}",
        time_seconds=time.monotonic() - started,
        bug_count=bugs,
        timed_out=timed_out,
    )


def _loc(cases: list[BenchCase]) -> int:
    return sum(len(case.source.splitlines()) for case in cases)


def _public_functions(cases: list[BenchCase]) -> int:
    from repro.minic import compile_c

    return sum(
        len(compile_c(case.source).public_functions()) for case in cases
    )


def litmus_rows(config: ClouConfig = CLOU_TABLE2_CONFIG,
                include_bh: bool = True) -> list[Table2Row]:
    """The four litmus suite rows of Table 2."""
    suites = {
        "litmus-pht": litmus_pht(),
        "litmus-stl": litmus_stl(),
        "litmus-fwd": litmus_fwd(),
        "litmus-new": litmus_new(),
    }
    rows = []
    for suite_name, cases in suites.items():
        engines = _suite_engines(cases)
        row = Table2Row(
            suite=suite_name,
            cases=len(cases),
            public_functions=_public_functions(cases),
            loc=_loc(cases),
        )
        for engine in engines:
            row.tools.append(_clou_tool_row(cases, engine, config))
        if include_bh:
            for engine in engines:
                if engine in BH_ENGINES:
                    row.tools.append(_bh_tool_row(cases, engine))
        rows.append(row)
    return rows


def crypto_rows(config: ClouConfig = CLOU_TABLE2_CONFIG,
                include_bh: bool = True) -> list[Table2Row]:
    """One row per crypto application."""
    rows = []
    for case in crypto_cases():
        row = Table2Row(
            suite=case.name,
            cases=1,
            public_functions=_public_functions([case]),
            loc=_loc([case]),
        )
        for engine in case.engines:
            row.tools.append(_clou_tool_row([case], engine, config))
        if include_bh:
            for engine in case.engines:
                if engine in BH_ENGINES:
                    row.tools.append(_bh_tool_row([case], engine))
        rows.append(row)
    return rows


def render(rows: list[Table2Row]) -> str:
    lines = [
        f"{'App (cases/PFun/LoC)':28s} {'Tool':10s} {'Time (s)':>9s} "
        f"{'Bugs (DT/CT/UDT/UCT)':>26s}",
        "-" * 78,
    ]
    for row in rows:
        label = f"{row.suite} ({row.cases}/{row.public_functions}/{row.loc})"
        for i, tool in enumerate(row.tools):
            prefix = label if i == 0 else ""
            timeout_marker = " *" if tool.timed_out else ""
            lines.append(
                f"{prefix:28s} {tool.tool:10s} {tool.time_seconds:9.2f} "
                f"{tool.render_bugs():>26s}{timeout_marker}"
            )
    lines.append("(* = hit its timeout, as BH does on large functions in "
                 "Table 2;")
    lines.append(" parenthesized UDT/UCT = worst-case-alias survivors, "
                 "§6.2.2)")
    return "\n".join(lines)


def main() -> None:
    rows = litmus_rows() + crypto_rows()
    print("Table 2 reproduction — Clou vs. BH")
    print(render(rows))


if __name__ == "__main__":
    main()
