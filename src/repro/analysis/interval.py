"""Branch-independent value-range analysis over array indices.

Proves *non-speculative in-boundedness* (§6.2 terminology: whether an
access can ever leave its object) for the range-pruning knob in
``ClouPHT`` and the worst-case-alias sharpening in postprocess.

Soundness under speculation is the whole point, so the analysis is
deliberately **branch-independent**: it never refines a range from a
comparison, because a mispredicted PHT branch executes the very path the
comparison was supposed to exclude.  Facts come only from places the
transient machine cannot undo — type widths (a ``u8`` load is ≤ 255
no matter what the attacker trained), masking/modulo arithmetic, and
reaching stores over stack slots (an A-CFG path is an A-CFG path whether
or not it is architecturally reachable).  Spectre-PHT's bounds check
``if (x < size) a[x]`` therefore proves nothing here, while
``a[x & (N-1)]`` with a power-of-two extent does — exactly the split
between gadgets Clou must keep searching and accesses it may skip.

The fixpoint iterates *descending* from type-range top, which is sound
at every round (each transfer over-approximates given over-approximate
inputs), so the round cap needs no widening; on a DAG A-CFG one pass in
reverse postorder already converges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir import (Alloca, ArrayType, BinOp, Cast, Constant, Function,
                      GetElementPtr, GlobalRef, ICmp, Instruction, IntType,
                      Load, PointerType, Store, StructType, Temp, Value)

from .cfg import BlockCFG
from .reaching import ReachingStores, definitions
from .dataflow import solve


@dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``None`` bounds mean ±infinity."""

    lo: int | None
    hi: int | None

    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    def contains(self, other: "Interval") -> bool:
        lo_ok = self.lo is None or (other.lo is not None and other.lo >= self.lo)
        hi_ok = self.hi is None or (other.hi is not None and other.hi <= self.hi)
        return lo_ok and hi_ok

    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def clip(self, bound: "Interval") -> "Interval":
        """Intersect with ``bound`` (used only when wraparound is impossible)."""
        lo = self.lo if bound.lo is None else (
            bound.lo if self.lo is None else max(self.lo, bound.lo))
        hi = self.hi if bound.hi is None else (
            bound.hi if self.hi is None else min(self.hi, bound.hi))
        if lo is not None and hi is not None and lo > hi:
            return bound
        return Interval(lo, hi)

    @property
    def nonneg(self) -> bool:
        return self.lo is not None and self.lo >= 0

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


TOP = Interval(None, None)


def type_range(type_: Value | None) -> Interval:
    """The representable range of an integer type (TOP otherwise)."""
    if not isinstance(type_, IntType):
        return TOP
    if type_.bits == 1:
        return Interval(0, 1)
    if type_.signed:
        half = 1 << (type_.bits - 1)
        return Interval(-half, half - 1)
    return Interval(0, (1 << type_.bits) - 1)


def _binop_range(op: str, a: Interval, b: Interval, out: Interval) -> Interval:
    """Result interval for ``a op b``; ``out`` is the result type range.

    Callers clip ``a``/``b`` to their operand type ranges first, so all
    bounds are finite here.  Wrapping ops (add/sub/mul/shl) keep the
    exact result only when it fits ``out``; non-wrapping ops clip.
    """

    def wrap(iv: Interval) -> Interval:
        return iv if out.contains(iv) else out

    if op == "add":
        return wrap(Interval(a.lo + b.lo, a.hi + b.hi))
    if op == "sub":
        return wrap(Interval(a.lo - b.hi, a.hi - b.lo))
    if op == "mul":
        corners = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
        return wrap(Interval(min(corners), max(corners)))
    if op == "and":
        # x & m with m wholly non-negative is always in [0, m] in two's
        # complement — the masking idiom the pruner exists to recognize.
        caps = [iv.hi for iv in (a, b) if iv.nonneg]
        if caps:
            return Interval(0, min(caps)).clip(out)
        return out
    if op in ("or", "xor"):
        if a.nonneg and b.nonneg:
            bits = max(a.hi.bit_length(), b.hi.bit_length())
            return Interval(0, (1 << bits) - 1).clip(out)
        return out
    if op == "urem":
        if b.lo > 0:
            return Interval(0, b.hi - 1).clip(out)
        return out
    if op == "udiv":
        if a.nonneg and b.lo > 0:
            return Interval(a.lo // b.hi, a.hi // b.lo).clip(out)
        return out
    if op == "sdiv":
        if a.nonneg and b.lo > 0:
            return Interval(a.lo // b.hi, a.hi // b.lo).clip(out)
        return out
    if op == "shl":
        if a.nonneg and b.nonneg and b.hi < 128:
            return wrap(Interval(a.lo << b.lo, a.hi << b.hi))
        return out
    if op in ("lshr", "ashr"):
        if a.nonneg and b.nonneg and b.hi < 128:
            return Interval(a.lo >> b.hi, a.hi >> b.lo).clip(out)
        return out
    return out


class IntervalAnalysis:
    """Value ranges for one function plus in-boundedness queries."""

    def __init__(self, function: Function, cfg: BlockCFG | None = None,
                 max_rounds: int = 4):
        self.function = function
        self.cfg = cfg or BlockCFG(function)
        self.defs = definitions(function)
        self._problem = ReachingStores(function)
        self._reaching = solve(function, self._problem, cfg=self.cfg)
        self._ins_at: dict[tuple[str, int], Instruction] = {}
        for block in function.blocks:
            for index, ins in enumerate(block.instructions):
                self._ins_at[(block.label, index)] = ins
        self._ranges: dict[str, Interval] = {}
        self._bounds_memo: dict[int, bool] = {}
        self._load_facts: dict[int, list[tuple] | None] = {}
        self._run(max_rounds)

    # -- fixpoint ----------------------------------------------------------

    def _run(self, max_rounds: int) -> None:
        # One replay freezes each load's reaching-store facts — the
        # reaching solution is fixed, so only the interval rounds repeat.
        for block in self.function.blocks:
            state = self._reaching.block_in.get(block.label, 0)
            for ins in block.instructions:
                if isinstance(ins, Load) and ins.result is not None \
                        and isinstance(ins.result.type, IntType):
                    self._load_facts[id(ins)] = \
                        self._problem.stores_for(ins, state)
                state = self._problem.transfer(ins, state)
        order = self.cfg.reverse_postorder()
        for _ in range(max_rounds):
            changed = False
            for label in order:
                for ins in self.cfg.block_of[label].instructions:
                    if ins.result is not None and isinstance(
                            ins.result.type, IntType):
                        new = self._transfer(ins)
                        if self._ranges.get(ins.result.name) != new:
                            self._ranges[ins.result.name] = new
                            changed = True
            if not changed:
                break

    def range_of(self, value: Value) -> Interval:
        """Sound interval for any IR value (TOP for non-integers)."""
        if isinstance(value, Constant):
            return Interval(value.value, value.value)
        bound = type_range(value.type)
        if isinstance(value, Temp):
            return self._ranges.get(value.name, bound).clip(bound)
        return bound

    def _transfer(self, ins: Instruction) -> Interval:
        out = type_range(ins.result.type)
        if isinstance(ins, Load):
            slot = self._load_range(ins)
            return slot.clip(out) if slot is not None else out
        if isinstance(ins, BinOp):
            a = self.range_of(ins.lhs)
            b = self.range_of(ins.rhs)
            return _binop_range(ins.op, a, b, out)
        if isinstance(ins, ICmp):
            return Interval(0, 1)
        if isinstance(ins, Cast):
            inner = self.range_of(ins.value)
            return inner if out.contains(inner) else out
        # Calls, arguments-by-way-of-anything-else: the type is all we know.
        return out

    def _load_range(self, ins: Load) -> Interval | None:
        """Join of the values the reaching stores may have written, or
        None when the slot may be uninitialized or clobbered."""
        facts = self._load_facts.get(id(ins))
        if facts is None:
            return None
        joined: Interval | None = None
        for fact in facts:
            store = self._ins_at[(fact[2], fact[3])]
            value = self.range_of(store.value) if isinstance(store, Store) \
                else TOP  # call writing an escaped slot
            joined = value if joined is None else joined.join(value)
        return joined

    # -- in-boundedness ----------------------------------------------------

    def access_in_bounds(self, ins: Instruction) -> bool:
        """Can this load/store ever (even transiently) leave its object?

        True only when the accessed address provably stays inside a
        statically-sized object on *every* A-CFG path — mispredicted
        ones included, since ranges never trust branches.
        """
        if not isinstance(ins, (Load, Store)):
            return False
        key = id(ins)
        cached = self._bounds_memo.get(key)
        if cached is None:
            cached = self._pointer_in_bounds(ins.pointer)
            self._bounds_memo[key] = cached
        return cached

    def in_bounds_at(self, label: str, index: int) -> bool:
        ins = self._ins_at.get((label, index))
        return ins is not None and self.access_in_bounds(ins)

    def _pointer_in_bounds(self, value: Value) -> bool:
        if isinstance(value, GlobalRef):
            return True  # the object's own address
        if not isinstance(value, Temp):
            return False
        ins = self.defs.get(value.name)
        if isinstance(ins, Alloca):
            return True
        if isinstance(ins, Cast):
            return self._pointer_in_bounds(ins.value)
        if isinstance(ins, GetElementPtr):
            return self._gep_in_bounds(ins)
        # Loaded or call-produced pointers: extent unknown — and a
        # transiently-loaded pointer is exactly the Listing 1 shape.
        return False

    def _gep_in_bounds(self, gep: GetElementPtr) -> bool:
        base_type = gep.base.type
        if not isinstance(base_type, PointerType):
            return False
        if len(gep.indices) == 1:
            # Pointer arithmetic on a (possibly decayed) element pointer:
            # recover the underlying array extent and accumulated offset.
            extent = self._decayed_extent(gep.base)
            if extent is None:
                return False
            count, offset = extent
            rng = self.range_of(gep.indices[0])
            return (rng.lo is not None and rng.hi is not None
                    and rng.lo + offset >= 0 and rng.hi + offset < count)
        # Aggregate shape gep(base, [0, i, ...]): the leading literal 0
        # means no pointer arithmetic on base itself.
        first = gep.indices[0]
        if not (isinstance(first, Constant) and first.value == 0):
            return False
        if not self._pointer_in_bounds(gep.base):
            return False
        walked = base_type.pointee
        for index in gep.indices[1:]:
            if isinstance(walked, ArrayType):
                rng = self.range_of(index)
                if (rng.lo is None or rng.hi is None
                        or rng.lo < 0 or rng.hi >= walked.count):
                    return False
                walked = walked.element
            elif isinstance(walked, StructType):
                if not isinstance(index, Constant):
                    return False
                if not 0 <= index.value < len(walked.fields):
                    return False
                walked = walked.fields[index.value][1]
            else:
                return False
        return True

    def _decayed_extent(self, value: Value) -> tuple[int, int] | None:
        """(array count, constant offset) for an element pointer produced
        by array decay or constant pointer arithmetic; None if unknown."""
        if not isinstance(value, Temp):
            return None
        ins = self.defs.get(value.name)
        if isinstance(ins, Cast):
            return self._decayed_extent(ins.value)
        if not isinstance(ins, GetElementPtr):
            return None
        if any(not isinstance(i, Constant) for i in ins.indices):
            return None
        base_type = ins.base.type
        if (len(ins.indices) == 2 and ins.indices[0].value == 0
                and isinstance(base_type, PointerType)
                and isinstance(base_type.pointee, ArrayType)
                and self._pointer_in_bounds(ins.base)):
            return base_type.pointee.count, ins.indices[1].value
        if len(ins.indices) == 1:
            inner = self._decayed_extent(ins.base)
            if inner is None:
                return None
            count, offset = inner
            return count, offset + ins.indices[0].value
        return None
