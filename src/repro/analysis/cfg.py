"""Block-level CFG utilities for the dataflow framework.

The S-AEG builds its own flat node graph for windowed BFS; the analysis
layer instead works at basic-block granularity, which is what the
classical worklist algorithms (reaching definitions, liveness, intervals)
want.  ``BlockCFG`` precomputes successor/predecessor maps and orderings;
dominators use the standard iterative intersection over reverse postorder
(Cooper-Harvey-Kennedy without the tree compression — our functions are
small enough that the dense fixpoint is fine).
"""

from __future__ import annotations

from repro.ir import Function


class BlockCFG:
    """Successor/predecessor maps plus orderings for one function."""

    def __init__(self, function: Function):
        self.function = function
        self.entry = function.blocks[0].label
        self.labels = [block.label for block in function.blocks]
        self.block_of = {block.label: block for block in function.blocks}
        self.successors: dict[str, list[str]] = {
            block.label: block.successors() for block in function.blocks
        }
        self.predecessors: dict[str, list[str]] = {label: [] for label in self.labels}
        for label, succs in self.successors.items():
            for succ in succs:
                self.predecessors[succ].append(label)
        self._rpo: list[str] | None = None
        self._dominators: dict[str, frozenset[str]] | None = None

    # -- orderings ---------------------------------------------------------

    def postorder(self) -> list[str]:
        """DFS postorder from the entry; unreachable blocks are omitted."""
        seen: set[str] = set()
        order: list[str] = []
        # Iterative DFS (A-CFGs can be thousands of blocks deep).
        stack: list[tuple[str, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            label, child = stack[-1]
            succs = self.successors[label]
            if child < len(succs):
                stack[-1] = (label, child + 1)
                succ = succs[child]
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, 0))
            else:
                order.append(label)
                stack.pop()
        return order

    def reverse_postorder(self) -> list[str]:
        if self._rpo is None:
            self._rpo = list(reversed(self.postorder()))
        return self._rpo

    @property
    def reachable(self) -> set[str]:
        return set(self.reverse_postorder())

    def exit_labels(self) -> list[str]:
        """Blocks with no successor (returns) — boundary for backward flows."""
        return [label for label in self.labels if not self.successors[label]]

    # -- dominance ---------------------------------------------------------

    def dominators(self) -> dict[str, frozenset[str]]:
        """label -> set of blocks that dominate it (reflexive).

        A block D dominates B when every CFG path from the entry to B
        passes through D — regardless of which way branches resolve, so
        the fact survives branch misprediction (what the interval
        analysis relies on for initialization arguments).
        """
        if self._dominators is not None:
            return self._dominators
        rpo = self.reverse_postorder()
        universe = frozenset(rpo)
        dom: dict[str, frozenset[str]] = {label: universe for label in rpo}
        dom[self.entry] = frozenset({self.entry})
        changed = True
        while changed:
            changed = False
            for label in rpo:
                if label == self.entry:
                    continue
                preds = [p for p in self.predecessors[label] if p in universe]
                if preds:
                    new = frozenset.intersection(*(dom[p] for p in preds))
                else:
                    new = frozenset()
                new = new | {label}
                if new != dom[label]:
                    dom[label] = new
                    changed = True
        self._dominators = dom
        return dom

    def dominates(self, a: str, b: str) -> bool:
        """Does block ``a`` dominate block ``b``?  (Reflexive.)"""
        return a in self.dominators().get(b, frozenset())

    def instruction_dominates(self, a: tuple[str, int], b: tuple[str, int]) -> bool:
        """Does instruction a=(block, index) dominate b=(block, index)?"""
        (block_a, index_a), (block_b, index_b) = a, b
        if block_a == block_b:
            return index_a < index_b
        return block_a != block_b and self.dominates(block_a, block_b)

    def immediate_dominators(self) -> dict[str, str | None]:
        """label -> its immediate dominator (None for the entry)."""
        dom = self.dominators()
        idom: dict[str, str | None] = {}
        for label in self.reverse_postorder():
            strict = dom[label] - {label}
            if not strict:
                idom[label] = None
                continue
            # The idom is the strict dominator dominated by all others.
            idom[label] = max(strict, key=lambda d: len(dom[d]))
        return idom
