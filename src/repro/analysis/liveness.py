"""Backward liveness of IR temporaries.

A temp is live at a point when some path to an exit uses it before any
redefinition.  Because the IR is SSA-ish for temps (each temp has one
defining instruction), kill sets are just the result temp; the analysis
is still flow-sensitive because uses sit on different paths.
"""

from __future__ import annotations

from repro.ir import Function, Instruction, Temp

from .cfg import BlockCFG
from .dataflow import DataflowProblem, DataflowSolution, SetLattice, solve


class Liveness(DataflowProblem):
    direction = "backward"

    def lattice(self) -> SetLattice:
        return SetLattice()

    def transfer(self, ins: Instruction, state: frozenset) -> frozenset:
        if ins.result is not None:
            state = state - {ins.result.name}
        uses = frozenset(op.name for op in ins.operands()
                         if isinstance(op, Temp))
        return state | uses


def liveness(function: Function, cfg: BlockCFG | None = None) -> DataflowSolution:
    """Solve liveness; ``block_in[label]`` is the live set at block end."""
    return solve(function, Liveness(), cfg=cfg)


def live_into_block(solution: DataflowSolution, label: str) -> frozenset:
    """Temps live on entry to ``label`` (i.e. at the top, program order)."""
    return solution.block_out[label]
