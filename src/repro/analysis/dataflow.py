"""Generic worklist dataflow solver over ``repro.ir`` CFGs.

A :class:`DataflowProblem` supplies a lattice, a direction, a boundary
state, and a per-instruction transfer function; :func:`solve` runs the
classical iterative worklist algorithm to the least fixpoint and returns
per-block states plus a replay API for per-instruction queries.

States are treated as immutable values: transfer functions must return a
fresh state (or the input unchanged) rather than mutating in place, and
lattice ``join`` must likewise be pure.  Equality of states is structural
(``==``), which is what terminates the fixpoint loop — lattices must have
finite height or clients must widen in their transfer functions.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterator

from repro.ir import BasicBlock, Function, Instruction

from .cfg import BlockCFG

State = Any


class Lattice:
    """A join-semilattice over analysis states."""

    def bottom(self) -> State:
        raise NotImplementedError

    def join(self, a: State, b: State) -> State:
        raise NotImplementedError

    def leq(self, a: State, b: State) -> bool:
        """Partial order; default derives it from join."""
        return self.join(a, b) == b


class SetLattice(Lattice):
    """Powerset lattice (may-analysis): frozensets ordered by inclusion."""

    def bottom(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def leq(self, a: frozenset, b: frozenset) -> bool:
        return a <= b


class BitsetLattice(Lattice):
    """Powerset lattice over Python-int bitsets: join is big-int OR.

    Orders of magnitude faster than frozensets for dense gen/kill
    problems — the state for thousands of facts is one machine object.
    """

    def bottom(self) -> int:
        return 0

    def join(self, a: int, b: int) -> int:
        return a | b

    def leq(self, a: int, b: int) -> bool:
        return a & ~b == 0


class MapLattice(Lattice):
    """Pointwise lift of a value lattice to dict states.

    Missing keys mean the value-lattice bottom; joins drop entries that
    join to bottom so states stay canonical and comparable with ``==``.
    """

    def __init__(self, value: Lattice):
        self.value = value

    def bottom(self) -> dict:
        return {}

    def join(self, a: dict, b: dict) -> dict:
        if not a:
            return b
        if not b:
            return a
        out = dict(a)
        vbottom = self.value.bottom()
        for key, bval in b.items():
            aval = out.get(key, vbottom)
            joined = self.value.join(aval, bval)
            if joined == vbottom:
                out.pop(key, None)
            else:
                out[key] = joined
        return {k: v for k, v in out.items() if v != vbottom}

    def leq(self, a: dict, b: dict) -> bool:
        vbottom = self.value.bottom()
        return all(self.value.leq(v, b.get(k, vbottom)) for k, v in a.items())


class LevelLattice(Lattice):
    """Small integer levels 0..top ordered numerically (join = max)."""

    def __init__(self, top: int):
        self.top = top

    def bottom(self) -> int:
        return 0

    def join(self, a: int, b: int) -> int:
        return min(max(a, b), self.top)

    def leq(self, a: int, b: int) -> bool:
        return a <= b


class DataflowProblem:
    """Client interface: lattice + direction + boundary + transfer."""

    direction = "forward"  # or "backward"

    def lattice(self) -> Lattice:
        raise NotImplementedError

    def boundary(self, function: Function) -> State:
        """State at the entry (forward) or at every exit (backward)."""
        return self.lattice().bottom()

    def transfer(self, ins: Instruction, state: State) -> State:
        """State after ``ins`` given the state before it (in flow order)."""
        raise NotImplementedError


class DataflowSolution:
    """Fixpoint result: per-block boundary states plus instruction replay."""

    def __init__(self, problem: DataflowProblem, cfg: BlockCFG,
                 block_in: dict[str, State], block_out: dict[str, State]):
        self.problem = problem
        self.cfg = cfg
        self.block_in = block_in
        self.block_out = block_out

    def _flow_instructions(self, block: BasicBlock) -> list[Instruction]:
        ins = list(block.instructions)
        if self.problem.direction == "backward":
            ins.reverse()
        return ins

    def instruction_states(self, label: str) -> Iterator[tuple[Instruction, State]]:
        """Yield (instruction, state-before-it-in-flow-order) pairs.

        For forward problems the state is what holds *before* the
        instruction executes; for backward problems, what holds *after*
        it in program order (i.e. before it against the flow).
        """
        block = self.cfg.block_of[label]
        state = self.block_in[label]
        for ins in self._flow_instructions(block):
            yield ins, state
            state = self.problem.transfer(ins, state)

    def at(self, label: str, index: int) -> State:
        """State before instruction ``index`` of ``label`` in flow order."""
        block = self.cfg.block_of[label]
        target = block.instructions[index]
        for ins, state in self.instruction_states(label):
            if ins is target:
                return state
        raise IndexError(f"no instruction {index} in block {label}")


def solve(function: Function, problem: DataflowProblem,
          cfg: BlockCFG | None = None,
          max_iterations: int = 10_000_000) -> DataflowSolution:
    """Run the worklist algorithm to the least fixpoint."""
    cfg = cfg or BlockCFG(function)
    lattice = problem.lattice()
    forward = problem.direction != "backward"

    if forward:
        order = cfg.reverse_postorder()
        edges_in: Callable[[str], list[str]] = lambda l: cfg.predecessors[l]
        edges_out: Callable[[str], list[str]] = lambda l: cfg.successors[l]
        boundary_labels = {cfg.entry}
    else:
        order = cfg.postorder()
        edges_in = lambda l: cfg.successors[l]
        edges_out = lambda l: cfg.predecessors[l]
        boundary_labels = set(cfg.exit_labels())

    boundary = problem.boundary(function)
    state_in: dict[str, State] = {l: lattice.bottom() for l in cfg.labels}
    state_out: dict[str, State] = {l: lattice.bottom() for l in cfg.labels}
    for label in boundary_labels:
        state_in[label] = boundary

    def apply_block(label: str) -> State:
        state = state_in[label]
        block = cfg.block_of[label]
        instructions = block.instructions
        if not forward:
            instructions = list(reversed(instructions))
        for ins in instructions:
            state = problem.transfer(ins, state)
        return state

    worklist: deque[str] = deque(order)
    queued = set(order)
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError(
                f"dataflow fixpoint did not converge in {max_iterations} "
                f"iterations on {function.name!r} — widen the lattice")
        label = worklist.popleft()
        queued.discard(label)
        incoming = state_in[label]
        for pred in edges_in(label):
            incoming = lattice.join(incoming, state_out[pred])
        if label in boundary_labels:
            incoming = lattice.join(incoming, boundary)
        state_in[label] = incoming
        new_out = apply_block(label)
        if new_out != state_out[label]:
            state_out[label] = new_out
            for succ in edges_out(label):
                if succ not in queued:
                    queued.add(succ)
                    worklist.append(succ)

    if forward:
        return DataflowSolution(problem, cfg, state_in, state_out)
    # For backward problems, report states in flow orientation: block_in
    # is the state at the block's end (flow entry), block_out at its start.
    return DataflowSolution(problem, cfg, state_in, state_out)
