"""Reaching definitions for -O0 stack slots.

minic lowers every local and parameter through an alloca, so the
interesting "definitions" are *stores*: which stores can a given load
observe?  This is the classical gen/kill reaching-definitions problem
over the powerset lattice, with three kinds of facts:

- ``("uninit", base)`` — the slot may still hold its uninitialized value
  (seeded at the entry for every alloca; killed by whole-slot stores).
- ``("store", base, label, index, whole)`` — the store at (label, index)
  may be the last write to ``base``.  ``whole`` distinguishes strong
  updates (pointer is exactly the alloca) from element stores through a
  GEP, which only ever gen (weak update).
- ``("clobber", label, index)`` — a store through an unresolvable
  pointer, or a call that may write an escaped slot; poisons every base.

Facts are enumerated up front and the dataflow state is a Python-int
*bitset* (one bit per fact): joins are single big-int ORs and transfers
are precomputed ``(state & ~kill) | gen`` masks, which keeps the solve
linear enough for the thousands-of-blocks A-CFGs of the crypto corpus.

Pointer targets are resolved by a purely syntactic def-chain walk
(:func:`resolve_slot`); anything it cannot prove lands in ``unknown``
and becomes a clobber, keeping clients sound.  Per §5.2's allocation
assumptions, pointers rooted at arguments or globals can never alias a
local alloca, so stores through them do not disturb slot facts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir import (Alloca, Call, Cast, Function, GetElementPtr, GlobalRef,
                      Instruction, Load, PointerType, Store, Temp, Value)

from .cfg import BlockCFG
from .dataflow import BitsetLattice, DataflowProblem, DataflowSolution, solve


@dataclass(frozen=True)
class SlotRef:
    """Where a pointer lands after the def-chain walk."""

    kind: str        # 'alloca' | 'nonlocal' | 'unknown'
    base: str = ""   # alloca result temp name when kind == 'alloca'
    whole: bool = False  # pointer is exactly the alloca (strong update)

    @property
    def is_alloca(self) -> bool:
        return self.kind == "alloca"


NONLOCAL = SlotRef("nonlocal")
UNKNOWN = SlotRef("unknown")


def definitions(function: Function) -> dict[str, Instruction]:
    """Map temp name -> defining instruction."""
    defs: dict[str, Instruction] = {}
    for block in function.blocks:
        for ins in block.instructions:
            if ins.result is not None:
                defs[ins.result.name] = ins
    return defs


def resolve_slot(value: Value, defs: dict[str, Instruction]) -> SlotRef:
    """Resolve a pointer value to the stack slot it addresses, if any."""
    whole = True
    seen: set[str] = set()
    while True:
        if isinstance(value, GlobalRef):
            return NONLOCAL
        if not isinstance(value, Temp):
            # Arguments cannot alias local allocas (§5.2 assumption 1);
            # constants are not pointers.
            return NONLOCAL if isinstance(value.type, PointerType) else UNKNOWN
        if value.name in seen:
            return UNKNOWN
        seen.add(value.name)
        ins = defs.get(value.name)
        if ins is None:
            return UNKNOWN
        if isinstance(ins, Alloca):
            return SlotRef("alloca", base=value.name, whole=whole)
        if isinstance(ins, GetElementPtr):
            whole = False
            value = ins.base
        elif isinstance(ins, Cast):
            value = ins.value
        else:
            # Loaded or call-produced pointers: target unknown.
            return UNKNOWN


class ReachingStores(DataflowProblem):
    """Forward may-analysis over store/uninit/clobber bitset facts."""

    direction = "forward"

    def __init__(self, function: Function):
        self.function = function
        self.defs = definitions(function)
        self.allocas: list[str] = [
            ins.result.name
            for block in function.blocks for ins in block.instructions
            if isinstance(ins, Alloca) and ins.result is not None
        ]
        self.escaped = self._escaped_slots()
        self.facts: list[tuple] = []
        self._fact_bit: dict[tuple, int] = {}
        self._slot_of: dict[int, SlotRef] = {}  # id(Load/Store) -> target
        # Per-base masks for decoding; clobbers poison every base.
        self.uninit_bit: dict[str, int] = {}
        self.base_mask: dict[str, int] = {}
        self.clobber_mask: int = 0
        self._masks: dict[int, tuple[int, int]] = {}  # id(ins) -> (gen, kill)
        self._enumerate_facts()

    def _bit(self, fact: tuple) -> int:
        bit = self._fact_bit.get(fact)
        if bit is None:
            bit = 1 << len(self.facts)
            self._fact_bit[fact] = bit
            self.facts.append(fact)
        return bit

    def _escaped_slots(self) -> frozenset[str]:
        """Alloca bases whose address leaves the function's hands —
        passed to a call or stored somewhere as a value — so any later
        call may write them."""
        escaped: set[str] = set()
        for block in self.function.blocks:
            for ins in block.instructions:
                candidates: list[Value] = []
                if isinstance(ins, Call):
                    candidates = [a for a in ins.args
                                  if isinstance(a.type, PointerType)]
                elif isinstance(ins, Store) and isinstance(
                        ins.value.type, PointerType):
                    candidates = [ins.value]
                for value in candidates:
                    ref = resolve_slot(value, self.defs)
                    if ref.is_alloca:
                        escaped.add(ref.base)
        return frozenset(escaped)

    def _enumerate_facts(self) -> None:
        for base in self.allocas:
            bit = self._bit(("uninit", base))
            self.uninit_bit[base] = bit
            self.base_mask[base] = bit
        for block in self.function.blocks:
            for index, ins in enumerate(block.instructions):
                gen = 0
                kill = 0
                if isinstance(ins, (Load, Store)):
                    ref = resolve_slot(ins.pointer, self.defs)
                    self._slot_of[id(ins)] = ref
                if isinstance(ins, Store):
                    ref = self._slot_of[id(ins)]
                    if ref.is_alloca:
                        fact = ("store", ref.base, block.label, index,
                                ref.whole)
                        gen = self._bit(fact)
                        self.base_mask[ref.base] |= gen
                        if ref.whole:
                            # Strong update: kill everything previously
                            # known about this base (mask is final only
                            # after enumeration; patched below).
                            kill = -1  # placeholder, resolved after scan
                    elif ref.kind == "unknown":
                        gen = self._bit(("clobber", block.label, index))
                        self.clobber_mask |= gen
                elif isinstance(ins, Call):
                    targets = set(self.escaped)
                    for arg in ins.args:
                        if not isinstance(arg.type, PointerType):
                            continue
                        ref = resolve_slot(arg, self.defs)
                        if ref.is_alloca:
                            targets.add(ref.base)
                        elif ref.kind == "unknown":
                            gen |= self._bit(
                                ("clobber", block.label, index))
                            self.clobber_mask |= gen
                    for base in sorted(targets):
                        bit = self._bit(
                            ("store", base, block.label, index, False))
                        gen |= bit
                        self.base_mask[base] |= bit
                if gen or kill:
                    self._masks[id(ins)] = (gen, kill)
        # Resolve strong-update kill masks now that base masks are final.
        for block in self.function.blocks:
            for ins in block.instructions:
                masks = self._masks.get(id(ins))
                if masks is None or masks[1] != -1:
                    continue
                gen = masks[0]
                ref = self._slot_of[id(ins)]
                self._masks[id(ins)] = (gen, self.base_mask[ref.base] & ~gen)

    def lattice(self) -> BitsetLattice:
        return BitsetLattice()

    def boundary(self, function: Function) -> int:
        state = 0
        for bit in self.uninit_bit.values():
            state |= bit
        return state

    def transfer(self, ins: Instruction, state: int) -> int:
        masks = self._masks.get(id(ins))
        if masks is None:
            return state
        gen, kill = masks
        return (state & ~kill) | gen

    # -- decoding ----------------------------------------------------------

    def decode(self, state: int) -> frozenset[tuple]:
        """The fact tuples present in a bitset state (for tests/clients)."""
        out = []
        mask = state
        while mask:
            low = mask & -mask
            out.append(self.facts[low.bit_length() - 1])
            mask ^= low
        return frozenset(out)

    def slot_of(self, ins: Instruction) -> SlotRef:
        ref = self._slot_of.get(id(ins))
        if ref is None:
            pointer = getattr(ins, "pointer", None)
            ref = resolve_slot(pointer, self.defs) if pointer is not None \
                else UNKNOWN
        return ref

    def stores_for(self, ins: Load, state: int) -> list[tuple] | None:
        """Store facts the load may observe, or None when the slot may be
        uninitialized / clobbered / not a tracked alloca slot."""
        ref = self.slot_of(ins)
        if not ref.is_alloca:
            return None
        if state & self.clobber_mask:
            return None
        if state & self.uninit_bit[ref.base]:
            return None
        relevant = state & self.base_mask[ref.base]
        out = []
        while relevant:
            low = relevant & -relevant
            out.append(self.facts[low.bit_length() - 1])
            relevant ^= low
        return out


def reaching_stores(function: Function,
                    cfg: BlockCFG | None = None) -> DataflowSolution:
    """Solve reaching stores for ``function``."""
    return solve(function, ReachingStores(function), cfg=cfg)


def stores_reaching_load(solution: DataflowSolution, load: Load,
                         label: str, index: int) -> list[tuple] | None:
    """The store facts a load may observe, or None when the slot may be
    uninitialized / clobbered / not a tracked alloca slot."""
    problem = solution.problem
    assert isinstance(problem, ReachingStores)
    return problem.stores_for(load, solution.at(label, index))
