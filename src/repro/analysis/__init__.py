"""Classical IR-level static analysis for the Clou pipeline.

A generic worklist dataflow framework (:mod:`.dataflow`, :mod:`.cfg`)
with the classical clients (reaching definitions, liveness) and two
Clou-facing passes: the sequential constant-time lint (:mod:`.lint`,
backed by the interprocedural secret taint in :mod:`.taint`) and the
branch-independent interval analysis (:mod:`.interval`) that powers
``ClouConfig.enable_range_pruning``.
"""

from .cfg import BlockCFG
from .dataflow import (BitsetLattice, DataflowProblem, DataflowSolution,
                       Lattice, LevelLattice, MapLattice, SetLattice, solve)
from .interval import Interval, IntervalAnalysis, type_range
from .lint import (LintFinding, LintReport, lint_finding_from_dict,
                   lint_module, lint_report_dict, lint_report_from_dict,
                   lint_report_json, lint_source)
from .liveness import Liveness, live_into_block, liveness
from .reaching import (ReachingStores, SlotRef, reaching_stores, resolve_slot,
                       stores_reaching_load)
from .taint import SecretTaintAnalysis

__all__ = [
    "BitsetLattice", "BlockCFG", "DataflowProblem", "DataflowSolution", "Interval",
    "IntervalAnalysis", "Lattice", "LevelLattice", "LintFinding",
    "LintReport", "Liveness", "MapLattice", "ReachingStores",
    "SecretTaintAnalysis", "SetLattice", "SlotRef", "lint_finding_from_dict",
    "lint_module", "lint_report_dict", "lint_report_from_dict",
    "lint_report_json", "lint_source",
    "live_into_block", "liveness", "reaching_stores", "resolve_slot",
    "solve", "stores_reaching_load", "type_range",
]
