"""Interprocedural secret-taint for the sequential constant-time lint.

Propagates the §7 secrecy labels through raw (pre-A-CFG) IR: a cheap
sequential baseline in the sense of Guarnieri et al.'s contract
hierarchy — the policy the speculative engines then strengthen.  No
S-AEG, no window search, no solver; per-function propagation is a
flow-sensitive client of the generic dataflow framework, and
interprocedural flow iterates context-insensitive function summaries
(parameter levels, pointee-object levels, return levels) to a module
fixpoint.

Taint levels form a three-point chain:

- ``0`` public.
- ``1`` secret data — branching on it or using it as an address is a
  sequential constant-time violation (Table 1: CT / DT).
- ``2`` data *fetched through* a secret-derived address — the value an
  out-of-bounds read could have fetched from anywhere, so using it as
  an address again is the universal (Listing 1 / sigalgs) shape
  (Table 1: UCT / UDT).

When no explicit labels are given, every parameter of every public
function is treated as secret (scalars at level 1; what pointer
parameters point to at level 1) — the paper's "audit a crypto
primitive" default, where all inputs are keys/plaintext until declared
otherwise.  Globals default to public; name them in ``secrets`` to
label them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clou.alias import AliasAnalysis, Provenance
from repro.ir import (Argument, Call, Function, Instruction, Load, Module,
                      PointerType, Ret, Store, Temp, Value)

from .dataflow import (DataflowProblem, DataflowSolution, LevelLattice,
                       MapLattice, solve)

PUBLIC, SECRET, TRANSITIVE = 0, 1, 2


def _slot_key(base: str) -> str:
    return f"slot:{base}"


@dataclass
class TaintSummaries:
    """Module-level maps iterated to fixpoint across functions."""

    global_levels: dict[str, int] = field(default_factory=dict)
    param_levels: dict[tuple[str, str], int] = field(default_factory=dict)
    argobj_levels: dict[tuple[str, str], int] = field(default_factory=dict)
    argobj_writes: dict[tuple[str, str], int] = field(default_factory=dict)
    ret_levels: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> tuple:
        return (dict(self.global_levels), dict(self.param_levels),
                dict(self.argobj_levels), dict(self.argobj_writes),
                dict(self.ret_levels))

    def raise_level(self, table: dict, key, level: int) -> None:
        if level > table.get(key, PUBLIC):
            table[key] = min(level, TRANSITIVE)


class _FunctionTaint(DataflowProblem):
    """Flow-sensitive per-function propagation given module summaries.

    State maps temp names and ``slot:<alloca>`` keys to levels; missing
    keys are public.  Slot stores through the bare alloca pointer are
    strong updates (a re-zeroed local really is public again); element
    stores through GEPs are weak.
    """

    direction = "forward"

    def __init__(self, analysis: "SecretTaintAnalysis", function: Function,
                 alias: AliasAnalysis):
        self.analysis = analysis
        self.function = function
        self.alias = alias

    def lattice(self) -> MapLattice:
        return MapLattice(LevelLattice(TRANSITIVE))

    def value_level(self, value: Value, state: dict) -> int:
        if isinstance(value, Temp):
            return state.get(value.name, PUBLIC)
        if isinstance(value, Argument):
            return self.analysis.summaries.param_levels.get(
                (self.function.name, value.name), PUBLIC)
        # Constants and global addresses are public.
        return PUBLIC

    def object_level(self, prov: Provenance, state: dict) -> int:
        summaries = self.analysis.summaries
        if prov.kind == "alloca":
            return state.get(_slot_key(prov.base), PUBLIC)
        if prov.kind == "global":
            return summaries.global_levels.get(prov.base, PUBLIC)
        if prov.kind == "arg":
            return summaries.argobj_levels.get(
                (self.function.name, prov.base), PUBLIC)
        return PUBLIC

    def _set(self, state: dict, key: str, level: int) -> dict:
        if state.get(key, PUBLIC) == level:
            return state
        state = dict(state)
        if level == PUBLIC:
            state.pop(key, None)
        else:
            state[key] = level
        return state

    def transfer(self, ins: Instruction, state: dict) -> dict:
        if isinstance(ins, Load):
            prov = self.alias.value_provenance(ins.pointer)
            level = self.object_level(prov, state)
            if self.value_level(ins.pointer, state) >= SECRET:
                # Fetched through a secret-derived address: could be any
                # byte in memory (level 2, capped there).
                level = max(level, TRANSITIVE)
            return self._set(state, ins.result.name, min(level, TRANSITIVE))
        if isinstance(ins, Store):
            prov = self.alias.value_provenance(ins.pointer)
            if prov.kind != "alloca":
                return state  # globals/arg objects update via summaries
            level = self.value_level(ins.value, state)
            key = _slot_key(prov.base)
            if prov.offsets == ():
                return self._set(state, key, level)  # strong update
            return self._set(state, key,
                             max(level, state.get(key, PUBLIC)))
        if isinstance(ins, Call):
            return self._transfer_call(ins, state)
        if ins.result is not None:
            level = max((self.value_level(op, state)
                         for op in ins.operands()), default=PUBLIC)
            return self._set(state, ins.result.name, level)
        return state

    def _transfer_call(self, ins: Call, state: dict) -> dict:
        summaries = self.analysis.summaries
        callee = self.analysis.module.functions.get(ins.callee)
        if callee is not None and callee.blocks:
            result_level = summaries.ret_levels.get(ins.callee, PUBLIC)
            writes = {param: summaries.argobj_writes.get(
                (ins.callee, param), PUBLIC)
                for param, _ in callee.params}
            params = [name for name, _ in callee.params]
        else:
            # External call: assume it may copy any input anywhere.
            worst = max((max(self.value_level(a, state),
                             self.object_level(
                                 self.alias.value_provenance(a), state))
                         for a in ins.args), default=PUBLIC)
            result_level = worst
            writes = None
            params = []
        for position, arg in enumerate(ins.args):
            if not isinstance(arg.type, PointerType):
                continue
            prov = self.alias.value_provenance(arg)
            if prov.kind != "alloca":
                continue
            if writes is None:
                written = result_level  # external: worst input level
            else:
                param = params[position] if position < len(params) else None
                written = writes.get(param, PUBLIC) if param else PUBLIC
            if written > PUBLIC:
                key = _slot_key(prov.base)
                state = self._set(state, key,
                                  max(written, state.get(key, PUBLIC)))
        if ins.result is not None:
            state = self._set(state, ins.result.name, result_level)
        return state


class SecretTaintAnalysis:
    """Module-fixpoint secret taint plus per-function solutions."""

    def __init__(self, module: Module, secrets: tuple[str, ...] = (),
                 public: tuple[str, ...] = (),
                 default_secret_params: bool = True,
                 max_rounds: int = 20):
        self.module = module
        self.secrets = tuple(secrets)
        self.public = frozenset(public)
        self.default_secret_params = default_secret_params and not secrets
        self.summaries = TaintSummaries()
        # Objects the *user* (or the default policy) declared secret —
        # the lint's AT findings key on accesses to these.
        self.labeled_objects: set[tuple] = set()
        self._alias: dict[str, AliasAnalysis] = {}
        self.solutions: dict[str, DataflowSolution] = {}
        self._seed()
        self._fixpoint(max_rounds)

    # -- setup -------------------------------------------------------------

    def alias_for(self, function: Function) -> AliasAnalysis:
        analysis = self._alias.get(function.name)
        if analysis is None:
            analysis = AliasAnalysis(function)
            self._alias[function.name] = analysis
        return analysis

    def _label_param(self, function: Function, name: str, type_) -> None:
        if name in self.public:
            return
        if isinstance(type_, PointerType):
            self.summaries.raise_level(
                self.summaries.argobj_levels, (function.name, name), SECRET)
            self.labeled_objects.add(("arg", function.name, name))
        else:
            self.summaries.raise_level(
                self.summaries.param_levels, (function.name, name), SECRET)

    def _seed(self) -> None:
        named = set(self.secrets)
        for name in named:
            if name in self.module.globals:
                self.summaries.raise_level(
                    self.summaries.global_levels, name, SECRET)
                self.labeled_objects.add(("global", name))
        for function in self.module.functions.values():
            for param, type_ in function.params:
                if param in named:
                    self._label_param(function, param, type_)
                elif self.default_secret_params and function.is_public:
                    self._label_param(function, param, type_)

    # -- fixpoint ----------------------------------------------------------

    def _fixpoint(self, max_rounds: int) -> None:
        for _ in range(max_rounds):
            before = self.summaries.snapshot()
            for function in self.module.functions.values():
                if not function.blocks:
                    continue
                self._analyze_function(function)
            if self.summaries.snapshot() == before:
                break

    def _analyze_function(self, function: Function) -> None:
        alias = self.alias_for(function)
        problem = _FunctionTaint(self, function, alias)
        solution = solve(function, problem)
        self.solutions[function.name] = solution
        summaries = self.summaries
        for block in function.blocks:
            for ins, state in solution.instruction_states(block.label):
                if isinstance(ins, Store):
                    prov = alias.value_provenance(ins.pointer)
                    level = problem.value_level(ins.value, state)
                    if level == PUBLIC:
                        continue
                    if prov.kind == "global":
                        summaries.raise_level(
                            summaries.global_levels, prov.base, level)
                    elif prov.kind == "arg":
                        key = (function.name, prov.base)
                        summaries.raise_level(
                            summaries.argobj_writes, key, level)
                        summaries.raise_level(
                            summaries.argobj_levels, key, level)
                elif isinstance(ins, Ret) and ins.value is not None:
                    summaries.raise_level(
                        summaries.ret_levels, function.name,
                        problem.value_level(ins.value, state))
                elif isinstance(ins, Call):
                    self._bind_call(function, problem, alias, ins, state)

    def _bind_call(self, function: Function, problem: _FunctionTaint,
                   alias: AliasAnalysis, ins: Call, state: dict) -> None:
        callee = self.module.functions.get(ins.callee)
        if callee is None or not callee.blocks:
            return
        summaries = self.summaries
        for position, (param, _) in enumerate(callee.params):
            if position >= len(ins.args):
                break
            arg = ins.args[position]
            summaries.raise_level(
                summaries.param_levels, (ins.callee, param),
                problem.value_level(arg, state))
            if isinstance(arg.type, PointerType):
                prov = alias.value_provenance(arg)
                summaries.raise_level(
                    summaries.argobj_levels, (ins.callee, param),
                    problem.object_level(prov, state))
                # Writes the callee makes surface back on caller objects
                # that are themselves summary-tracked.
                written = summaries.argobj_writes.get(
                    (ins.callee, param), PUBLIC)
                if written > PUBLIC:
                    if prov.kind == "global":
                        summaries.raise_level(
                            summaries.global_levels, prov.base, written)
                    elif prov.kind == "arg":
                        summaries.raise_level(
                            summaries.argobj_writes,
                            (function.name, prov.base), written)
                        summaries.raise_level(
                            summaries.argobj_levels,
                            (function.name, prov.base), written)

    # -- queries (used by the lint) ----------------------------------------

    def is_labeled(self, function: Function, prov: Provenance) -> bool:
        if prov.kind == "global":
            return ("global", prov.base) in self.labeled_objects
        if prov.kind == "arg":
            return ("arg", function.name, prov.base) in self.labeled_objects
        return False

    def walk(self, function: Function):
        """Yield (block label, index, instruction, state, problem, alias)
        for every instruction of ``function`` at the module fixpoint."""
        solution = self.solutions.get(function.name)
        if solution is None:
            return
        problem = solution.problem
        alias = self.alias_for(function)
        for block in function.blocks:
            for index, (ins, state) in enumerate(
                    solution.instruction_states(block.label)):
                yield block.label, index, ins, state, problem, alias
