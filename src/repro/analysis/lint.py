"""Sequential constant-time lint: findings, report, and renderers.

The lint is the *sequential* end of the contract spectrum: it flags
code that already violates constant-time before any speculation is
modeled, using only the dataflow framework — no S-AEG, no windowed
search, no solver — so it runs in milliseconds where the engines take
seconds.  Severities reuse the Table 1 taxonomy:

=====  ================================================================
AT     informational: an access *to* a secret-labeled object with a
       public address (the object's bytes enter the dataflow here)
CT     branch on secret data
DT     load/store whose address depends on secret data
UCT    branch on data fetched through a secret-derived address
UDT    load/store addressed by data fetched through a secret-derived
       address — the Listing 1 / sigalgs double-fetch shape
=====  ================================================================

A clean report at CT-and-above is the paper's sequential constant-time
baseline; the speculative engines then check what the hardware contract
adds on top.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.ir import Branch, Load, Module, Store
from repro.lcm.taxonomy import TransmitterClass

from .taint import SECRET, SecretTaintAnalysis, TRANSITIVE


@dataclass(frozen=True)
class LintFinding:
    """One constant-time violation (or AT-level informational note)."""

    function: str
    block: str
    index: int
    severity: TransmitterClass
    kind: str    # 'secret-branch' | 'secret-indexed-load' |
                 # 'secret-indexed-store' | 'secret-object-access'
    text: str    # rendered instruction
    detail: str = ""

    @property
    def location(self) -> str:
        return f"{self.function}/{self.block}:{self.index}"

    def __str__(self) -> str:
        return (f"[{self.severity.value}] {self.location}: {self.kind} — "
                f"{self.text}" + (f" ({self.detail})" if self.detail else ""))


@dataclass
class LintReport:
    module_name: str
    functions: list[str]
    findings: list[LintFinding]

    def counts(self) -> dict[str, int]:
        out = {klass.value: 0 for klass in TransmitterClass}
        for finding in self.findings:
            out[finding.severity.value] += 1
        return out

    def worst(self) -> TransmitterClass | None:
        if not self.findings:
            return None
        return max((f.severity for f in self.findings),
                   key=lambda klass: klass.severity)

    def violations(self) -> list[LintFinding]:
        """Findings at CT or above — the actual constant-time breaks."""
        return [f for f in self.findings if f.severity.severity >= 1]

    def at_or_above(self, klass: TransmitterClass) -> list[LintFinding]:
        return [f for f in self.findings
                if f.severity.severity >= klass.severity]

    def summary(self) -> str:
        counts = self.counts()
        rendered = " ".join(f"{name}={counts[name]}"
                            for name in ("AT", "CT", "DT", "UCT", "UDT"))
        verdict = "constant-time" if not self.violations() else "NOT constant-time"
        return (f"lint {self.module_name or '<module>'}: "
                f"{len(self.functions)} function(s), {rendered} — {verdict}")

    def describe(self) -> str:
        lines = [self.summary()]
        lines.extend(f"  {finding}" for finding in self.findings)
        return "\n".join(lines)


def lint_finding_dict(finding: LintFinding) -> dict:
    return {
        "function": finding.function,
        "block": finding.block,
        "index": finding.index,
        "severity": finding.severity.value,
        "kind": finding.kind,
        "text": finding.text,
        "detail": finding.detail,
    }


def lint_report_dict(report: LintReport) -> dict:
    return {
        "module": report.module_name,
        "functions": sorted(report.functions),
        "counts": report.counts(),
        "constant_time": not report.violations(),
        "findings": [lint_finding_dict(f) for f in report.findings],
    }


def lint_report_json(report: LintReport, indent: int = 2) -> str:
    """Byte-stable JSON (no timing fields; findings pre-sorted)."""
    return json.dumps(lint_report_dict(report), indent=indent)


def lint_finding_from_dict(data: dict) -> LintFinding:
    return LintFinding(
        function=data["function"],
        block=data["block"],
        index=data["index"],
        severity=TransmitterClass(data["severity"]),
        kind=data["kind"],
        text=data["text"],
        detail=data.get("detail", ""),
    )


def lint_report_from_dict(data: dict) -> LintReport:
    """Inverse of :func:`lint_report_dict` (the scheduler's result cache
    stores lint reports as JSON).  Function order is the serialized
    (sorted) order; findings round-trip exactly."""
    return LintReport(
        module_name=data["module"],
        functions=list(data.get("functions", [])),
        findings=[lint_finding_from_dict(f)
                  for f in data.get("findings", [])],
    )


def _sort_key(finding: LintFinding) -> tuple:
    return (finding.function, finding.block, finding.index,
            -finding.severity.severity)


def lint_module(module: Module, secrets: tuple[str, ...] = (),
                public: tuple[str, ...] = (),
                default_secret_params: bool = True) -> LintReport:
    """Run the interprocedural lint over every defined function."""
    taint = SecretTaintAnalysis(module, secrets=secrets, public=public,
                                default_secret_params=default_secret_params)
    findings: list[LintFinding] = []
    for function in module.functions.values():
        if not function.blocks:
            continue
        for label, index, ins, state, problem, alias in taint.walk(function):
            if isinstance(ins, Branch):
                level = problem.value_level(ins.cond, state)
                if level >= TRANSITIVE:
                    findings.append(LintFinding(
                        function.name, label, index,
                        TransmitterClass.UNIVERSAL_CONTROL, "secret-branch",
                        str(ins),
                        "condition fetched through a secret-derived address"))
                elif level >= SECRET:
                    findings.append(LintFinding(
                        function.name, label, index,
                        TransmitterClass.CONTROL, "secret-branch", str(ins),
                        "condition depends on secret data"))
            elif isinstance(ins, (Load, Store)):
                kind = ("secret-indexed-load" if isinstance(ins, Load)
                        else "secret-indexed-store")
                level = problem.value_level(ins.pointer, state)
                if level >= TRANSITIVE:
                    findings.append(LintFinding(
                        function.name, label, index,
                        TransmitterClass.UNIVERSAL_DATA, kind, str(ins),
                        "address derived from secret-addressed fetch"))
                elif level >= SECRET:
                    findings.append(LintFinding(
                        function.name, label, index,
                        TransmitterClass.DATA, kind, str(ins),
                        "address depends on secret data"))
                else:
                    prov = alias.value_provenance(ins.pointer)
                    if taint.is_labeled(function, prov):
                        findings.append(LintFinding(
                            function.name, label, index,
                            TransmitterClass.ADDRESS, "secret-object-access",
                            str(ins), f"touches labeled object {prov}"))
    findings.sort(key=_sort_key)
    return LintReport(
        module_name=module.name,
        functions=sorted(f.name for f in module.functions.values()
                         if f.blocks),
        findings=findings,
    )


def lint_source(source: str, secrets: tuple[str, ...] = (),
                public: tuple[str, ...] = (), name: str = "",
                default_secret_params: bool = True) -> LintReport:
    """Compile mini-C ``source`` and lint the resulting module."""
    from repro.minic import compile_c

    module = compile_c(source, name=name)
    return lint_module(module, secrets=secrets, public=public,
                       default_secret_params=default_secret_params)
