"""Function-granular source digests for incremental re-analysis.

The result cache (:mod:`repro.sched.cache`) keys every analyze item by
the *content* of the work.  Keying on the whole-module digest makes any
edit — even a comment — invalidate every function's entry.  This module
computes a **normalized per-function digest** instead, so:

- editing function ``A`` only moves ``A``'s key (and the keys of
  functions that can *reach* ``A``, since the A-CFG inlines defined
  callees — §5.1);
- whitespace, comment, and preprocessor-line edits move no key at all
  (the mini-C lexer discards all three, and the frontend never reads
  them);
- reordering or editing unrelated top-level declarations *does* move
  every key (the preamble digest is order-sensitive), which is the
  conservative direction.

A function's digest covers, in order:

1. the **preamble** — every top-level token outside function
   definitions (globals, struct definitions, prototypes), which can
   change the meaning of any body;
2. its **own** normalized token stream (signature + body);
3. the own-streams of every *transitively referenced* defined function
   (an over-approximation of the call graph: any identifier occurrence
   counts as a potential call — safe, never unsound).

The splitter understands exactly the mini-C top-level grammar
(declarations end at a depth-0 ``;``; a depth-0 ``{`` preceded by ``)``
opens a function body).  Anything it cannot classify makes
:func:`function_digests` return ``None`` and the caller falls back to
the module-level digest — incremental reuse degrades, correctness does
not.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from repro.errors import ParseError
from repro.minic.lexer import Token, tokenize

__all__ = ["DIGEST_VERSION", "function_digests", "normalized_digest"]

# Bump when the normalization or closure rule changes: digests feed
# cache keys, so a rule change must move every address.
DIGEST_VERSION = 1


def _hash(parts) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
    return digest.hexdigest()


def _normalize(tokens: list[Token]) -> list[str]:
    # kind:text pairs; line numbers are deliberately dropped (they never
    # reach the IR), and so are whitespace/comments/preproc (the lexer
    # already discarded them).
    return [f"{token.kind}\x00{token.text}" for token in tokens]


def normalized_digest(source: str) -> str | None:
    """The whole-module *normalized* digest: stable under whitespace and
    comment edits, unlike :func:`repro.sched.cache.source_digest`.
    ``None`` when the source does not tokenize."""
    try:
        tokens = tokenize(source)
    except ParseError:
        return None
    return _hash(["v%d" % DIGEST_VERSION] + _normalize(tokens[:-1]))


def _segments(tokens: list[Token]):
    """Split a top-level token stream into ``("function", name, toks)``
    and ``("decl", None, toks)`` segments, or ``None`` if the stream
    does not fit the mini-C top-level shape."""
    segments = []
    current: list[Token] = []
    brace = 0
    in_function_body = False
    previous: Token | None = None
    for token in tokens:
        if token.kind == "eof":
            break
        current.append(token)
        if token.kind == "op" and token.text == "{":
            if brace == 0:
                # In the mini-C grammar a depth-0 brace after `)` can
                # only open a function body; every other depth-0 brace
                # (struct body, initializer) belongs to a declaration
                # that will end at its `;`.
                in_function_body = (previous is not None
                                    and previous.kind == "op"
                                    and previous.text == ")")
            brace += 1
        elif token.kind == "op" and token.text == "}":
            brace -= 1
            if brace < 0:
                return None
            if brace == 0 and in_function_body:
                name = _function_name(current)
                if name is None:
                    return None
                segments.append(("function", name, current))
                current = []
                in_function_body = False
        elif token.kind == "op" and token.text == ";" and brace == 0:
            segments.append(("decl", None, current))
            current = []
        previous = token
    if brace != 0:
        return None
    if current:
        # Trailing tokens that close no construct: treat as preamble so
        # they still affect every key.
        segments.append(("decl", None, current))
    return segments


def _function_name(segment: list[Token]) -> str | None:
    """The identifier immediately before the first ``(`` — the
    declarator name in the mini-C grammar (params contain no parens)."""
    for index, token in enumerate(segment):
        if token.kind == "op" and token.text == "(":
            if index and segment[index - 1].kind == "ident":
                return segment[index - 1].text
            return None
    return None


@lru_cache(maxsize=64)
def function_digests(source: str) -> dict[str, str] | None:
    """Map every defined function to its closure digest, or ``None``
    when the source cannot be split (fall back to module granularity).

    Memoized on the source text: the daemon hashes the same resident
    sources once per edit, not once per request.
    """
    try:
        tokens = tokenize(source)
    except ParseError:
        return None
    segments = _segments(tokens)
    if segments is None:
        return None
    own: dict[str, str] = {}
    referenced: dict[str, set[str]] = {}
    preamble_parts: list[str] = []
    for kind, name, segment in segments:
        if kind == "function":
            if name in own:
                return None  # duplicate definition: not valid mini-C
            own[name] = _hash(_normalize(segment))
            referenced[name] = {t.text for t in segment if t.kind == "ident"}
        else:
            preamble_parts.extend(_normalize(segment))
    preamble = _hash(preamble_parts)
    digests: dict[str, str] = {}
    for name in own:
        reachable: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in reachable:
                continue
            reachable.add(current)
            stack.extend(callee for callee in referenced[current]
                         if callee in own and callee not in reachable)
        dependencies = sorted(reachable - {name})
        digests[name] = _hash(
            ["v%d" % DIGEST_VERSION, "preamble", preamble, "self", own[name]]
            + [part for dep in dependencies for part in (dep, own[dep])])
    return digests
