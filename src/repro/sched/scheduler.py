"""Fault-isolated parallel work-item scheduler.

Fans independent work items out over a pool of worker *processes* (one
long-lived process per job slot, fed over pipes), with:

- **crash isolation** — a worker that dies (segfault, ``os._exit``,
  OOM-kill) produces an errored outcome for its item and a fresh worker
  process; the batch always completes;
- **wall-clock timeouts** — a hung item is hard-killed at its deadline
  (``concurrent.futures.ProcessPoolExecutor`` cannot do this: a running
  future is uncancellable, so the pool keeps its own slots);
- **bounded retries** — crashed items and items raising
  :class:`TransientError` are re-queued up to ``retries`` extra
  attempts; deterministic failures (ordinary exceptions) and timeouts
  are not retried;
- **a deterministic serial fallback** — ``jobs <= 1``, an unavailable
  ``multiprocessing``, or pickling-hostile payloads all run the same
  items in-process, in order, with identical outcome structure.

Results are returned in submission order regardless of completion
order, so downstream output is byte-stable across ``--jobs`` settings.

Worker processes persist across items, so worker-side memoization (the
compiled-module and S-AEG caches in :mod:`repro.sched.worker`) pays off
when many items share a translation unit.

Degradation support (workers opting in via a ``supports_checkpoints``
attribute):

- **checkpoint/resume** — workers stream progress snapshots up the
  pipe; a wall-clock kill, crash, or memory kill re-queues the item
  *with its last checkpoint*, so the retry resumes instead of
  restarting, and the merged result is identical to an uninterrupted
  run;
- **heartbeats** — checkpoint messages double as liveness beats:
  ``stall_timeout`` kills items whose worker went silent (hung) long
  before the full ``timeout``, distinguishing hung from merely slow;
- **memory ceilings** — ``memory_limit_mb`` applies
  ``resource.setrlimit(RLIMIT_AS)`` in each worker, converting runaway
  allocation into a recoverable ``MemoryError`` instead of an OOM kill;
- **clean interrupts** — SIGINT/SIGTERM in the parent terminates and
  joins every worker slot, discards partial checkpoints, and raises
  :class:`SchedulerInterrupt` for the CLI to turn into exit code 130.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sched.env import JOBS_ENV, env_jobs  # noqa: F401  (re-export)

__all__ = ["ItemOutcome", "JOBS_ENV", "SchedulerInterrupt",
           "TransientError", "run_items", "default_jobs"]

# Parent-loop tick: bounds how late a deadline kill or crash detection
# can fire.  Small enough to be unnoticeable, large enough to be free.
_TICK_SECONDS = 0.05


class TransientError(Exception):
    """Raised by a worker to request a retry (e.g. a flaky external
    resource).  Ordinary exceptions are deterministic failures and are
    not retried."""


class SchedulerInterrupt(Exception):
    """The batch was interrupted (SIGINT/SIGTERM) after a clean
    shutdown: workers terminated and joined, partial checkpoints
    discarded.  The CLI maps this to exit code 130."""


def default_jobs() -> int:
    """``$REPRO_JOBS`` when set and valid, else 1 (serial).  Delegates
    to :func:`repro.sched.env.env_jobs` so the CLI, library sessions,
    and the daemon cannot diverge on what the environment means."""
    return env_jobs(default=1)


@dataclass
class ItemOutcome:
    """What happened to one work item."""

    index: int
    value: Any = None
    error: str | None = None
    timed_out: bool = False
    crashed: bool = False
    attempts: int = 0
    elapsed: float = 0.0       # wall seconds across all attempts
    resumed: int = 0           # attempts that resumed from a checkpoint
    memory_killed: bool = False  # some attempt died of MemoryError
    hung: bool = False         # killed by the heartbeat stall detector
    partial: Any = None        # last checkpoint when the item failed

    @property
    def ok(self) -> bool:
        return self.error is None


def run_items(worker: Callable[[Any], Any], payloads: list,
              *, jobs: int = 1, timeout: float | None = None,
              retries: int = 1, memory_limit_mb: int | None = None,
              stall_timeout: float | None = None) -> list[ItemOutcome]:
    """Run ``worker(payload)`` for every payload; never raises for
    per-item failures (an interrupt raises :class:`SchedulerInterrupt`
    after clean shutdown).  ``timeout`` is a per-item wall-clock limit
    and ``stall_timeout`` a per-item heartbeat limit (both parallel mode
    only — a serial run cannot kill itself; the engines' cooperative
    ``ClouConfig.timeout_seconds`` budget covers that path).
    ``memory_limit_mb`` caps each worker's address space.
    """
    if not payloads:
        return []
    if jobs > 1:
        pool_or_reason = _try_parallel(worker, payloads, jobs,
                                       memory_limit_mb)
        if isinstance(pool_or_reason, _Pool):
            with pool_or_reason as pool:
                return pool.run(payloads, timeout=timeout, retries=retries,
                                stall_timeout=stall_timeout)
    return _run_serial(worker, payloads, retries=retries)


def _run_serial(worker, payloads, *, retries: int) -> list[ItemOutcome]:
    outcomes = []
    checkpoints = getattr(worker, "supports_checkpoints", False)
    for index, payload in enumerate(payloads):
        outcome = ItemOutcome(index=index)
        started = time.monotonic()
        state = {"checkpoint": None}
        while True:
            outcome.attempts += 1
            try:
                if checkpoints:
                    resume = state["checkpoint"]
                    if resume is not None:
                        outcome.resumed += 1
                    outcome.value = worker(
                        payload, resume=resume,
                        checkpoint=lambda snap: state.__setitem__(
                            "checkpoint", snap))
                else:
                    outcome.value = worker(payload)
                outcome.error = None
                break
            except KeyboardInterrupt:
                raise SchedulerInterrupt("interrupted") from None
            except MemoryError as error:
                # Recoverable: the checkpoint (if any) lets the retry
                # resume past the allocation spike's prefix.
                outcome.error = f"MemoryError: {error}"
                outcome.memory_killed = True
                if outcome.attempts > retries:
                    break
            except TransientError as error:
                outcome.error = f"{type(error).__name__}: {error}"
                if outcome.attempts > retries:
                    break
            except Exception as error:
                outcome.error = f"{type(error).__name__}: {error}"
                break
        if outcome.error is not None:
            outcome.partial = state["checkpoint"]
        outcome.elapsed = time.monotonic() - started
        outcomes.append(outcome)
    return outcomes


# ----------------------------------------------------------------------
# Parallel pool
# ----------------------------------------------------------------------


def _try_parallel(worker, payloads, jobs,
                  memory_limit_mb=None) -> "_Pool | str":
    """A ready pool, or a reason string for falling back to serial."""
    try:
        import multiprocessing as mp

        methods = mp.get_all_start_methods()
        method = "fork" if "fork" in methods else methods[0]
        ctx = mp.get_context(method)
    except (ImportError, ValueError, OSError) as error:
        return f"multiprocessing unavailable: {error}"
    try:
        # Payloads cross a pipe in both modes; the worker itself only
        # needs to pickle under spawn/forkserver.
        pickle.dumps(payloads)
        if method != "fork":
            pickle.dumps(worker)
    except Exception as error:
        return f"pickling-hostile workload: {type(error).__name__}"
    return _Pool(ctx, worker, jobs=min(jobs, len(payloads)),
                 memory_limit_mb=memory_limit_mb)


def _apply_memory_limit(limit_mb: int | None) -> None:
    """Cap the worker's address space so runaway allocation raises a
    recoverable MemoryError instead of drawing the kernel OOM killer."""
    if not limit_mb:
        return
    try:
        import resource

        ceiling = int(limit_mb) * 1024 * 1024
        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY:
            ceiling = min(ceiling, hard)
        resource.setrlimit(resource.RLIMIT_AS, (ceiling, hard))
    except (ImportError, ValueError, OSError):
        pass  # platform without RLIMIT_AS: ceiling is best-effort


def _worker_loop(worker, conn, memory_limit_mb=None):
    """Runs in the child: receive ``(index, payload, resume)``, send
    ``(index, status, value)`` — plus interim ``"checkpoint"`` messages
    when the worker supports them (these double as heartbeats).  Exits
    on the ``None`` sentinel or a closed pipe."""
    _apply_memory_limit(memory_limit_mb)
    checkpoints = getattr(worker, "supports_checkpoints", False)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        index, payload, resume = message
        try:
            if checkpoints:
                def emit(snapshot, _index=index):
                    try:
                        conn.send((_index, "checkpoint", snapshot))
                    except (OSError, ValueError):
                        pass  # parent gone; the terminal send will fail too
                value = worker(payload, resume=resume, checkpoint=emit)
            else:
                value = worker(payload)
            status = "ok"
        except MemoryError as error:
            value, status = f"MemoryError: {error}", "memory"
        except TransientError as error:
            value, status = f"{type(error).__name__}: {error}", "transient"
        except Exception as error:
            value, status = f"{type(error).__name__}: {error}", "error"
        try:
            conn.send((index, status, value))
        except Exception as error:
            # The *result* failed to pickle; report that instead of dying.
            conn.send((index, "error",
                       f"unpicklable result: {type(error).__name__}: {error}"))


@dataclass
class _Slot:
    proc: Any
    conn: Any
    item: int | None = None      # index of the in-flight item
    started: float = 0.0


@dataclass
class _Pending:
    index: int
    attempts: int = 0
    elapsed: float = 0.0
    last_error: str | None = None
    crashed: bool = False
    checkpoint: Any = None     # last snapshot streamed up the pipe
    last_beat: float = 0.0     # when that snapshot (or the send) happened
    resumed: int = 0
    memory_killed: bool = False
    hung: bool = False


class _Pool:
    def __init__(self, ctx, worker, jobs: int,
                 memory_limit_mb: int | None = None):
        self._ctx = ctx
        self._worker = worker
        self.jobs = jobs
        self.memory_limit_mb = memory_limit_mb
        self._slots: list[_Slot] = []

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._shutdown()
        return False

    def _spawn(self) -> _Slot:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_loop,
            args=(self._worker, child_conn, self.memory_limit_mb),
            daemon=True)
        proc.start()
        child_conn.close()
        slot = _Slot(proc=proc, conn=parent_conn)
        self._slots.append(slot)
        return slot

    def _retire(self, slot: _Slot) -> None:
        try:
            slot.conn.close()
        except OSError:
            pass
        if slot.proc.is_alive():
            slot.proc.kill()
        slot.proc.join()
        self._slots.remove(slot)

    def _shutdown(self) -> None:
        for slot in list(self._slots):
            try:
                slot.conn.send(None)
            except (OSError, ValueError):
                pass
        for slot in list(self._slots):
            slot.proc.join(timeout=0.5)
            self._retire(slot)

    def _abort(self) -> None:
        """Interrupt path: hard-kill and join every worker, discarding
        in-flight items and their (in-memory) partial checkpoints."""
        for slot in list(self._slots):
            self._retire(slot)

    def run(self, payloads, *, timeout: float | None, retries: int,
            stall_timeout: float | None = None) -> list[ItemOutcome]:
        from multiprocessing.connection import wait as conn_wait

        states = {i: _Pending(index=i) for i in range(len(payloads))}
        queue = deque(range(len(payloads)))
        outcomes: dict[int, ItemOutcome] = {}
        heartbeats = getattr(self._worker, "supports_checkpoints", False)

        # A SIGTERM (e.g. from a batch supervisor) should shut down as
        # cleanly as Ctrl-C; only the main thread may install handlers.
        def on_term(signum, frame):
            raise KeyboardInterrupt
        try:
            previous_term = signal.signal(signal.SIGTERM, on_term)
        except ValueError:
            previous_term = None

        def finish(index: int, **kwargs) -> None:
            state = states[index]
            outcomes[index] = ItemOutcome(
                index=index, attempts=state.attempts,
                elapsed=state.elapsed, resumed=state.resumed,
                memory_killed=state.memory_killed, hung=state.hung,
                **kwargs)

        def requeue_or_fail(index: int, error: str, crashed: bool) -> None:
            state = states[index]
            state.last_error, state.crashed = error, crashed
            if state.attempts <= retries:
                queue.append(index)
            else:
                finish(index, error=error, crashed=crashed,
                       partial=state.checkpoint)

        def reap(slot: _Slot, index: int, error: str, *,
                 now: float) -> None:
            """Kill a slot whose item ran past a deadline.  With a
            checkpoint in hand the retry resumes from it; without one
            the item fails as before (re-running from scratch would
            just hit the same deadline again)."""
            state = states[index]
            state.elapsed += now - slot.started
            if state.checkpoint is not None and state.attempts <= retries:
                state.last_error = error
                queue.append(index)
            else:
                finish(index, error=error, timed_out=True,
                       partial=state.checkpoint)
            slot.item = None
            self._retire(slot)  # the only way to stop a hung item

        try:
            while len(outcomes) < len(payloads):
                # Feed idle slots, spawning up to the job budget.
                while queue:
                    slot = next((s for s in self._slots if s.item is None),
                                None)
                    if slot is None and len(self._slots) < self.jobs:
                        slot = self._spawn()
                    if slot is None:
                        break
                    index = queue.popleft()
                    state = states[index]
                    state.attempts += 1
                    state.crashed = False
                    if state.checkpoint is not None:
                        state.resumed += 1
                    try:
                        slot.conn.send((index, payloads[index],
                                        state.checkpoint))
                    except pickle.PicklingError as error:
                        state.attempts -= 1
                        finish(index, error=f"unpicklable payload: {error}")
                        continue
                    except (OSError, ValueError):
                        # The worker died while idle; replace it and retry
                        # the send without charging the item an attempt.
                        state.attempts -= 1
                        if state.checkpoint is not None:
                            state.resumed -= 1
                        queue.appendleft(index)
                        self._retire(slot)
                        continue
                    slot.item = index
                    slot.started = time.monotonic()
                    state.last_beat = slot.started

                busy = [slot for slot in self._slots if slot.item is not None]
                if not busy:
                    if queue:
                        continue
                    break  # defensive: nothing running, nothing queued
                ready = conn_wait([slot.conn for slot in busy],
                                  timeout=_TICK_SECONDS)
                now = time.monotonic()
                for slot in busy:
                    index = slot.item
                    if index is None:
                        continue
                    state = states[index]
                    if slot.conn in ready:
                        try:
                            terminal = None
                            # Drain the pipe: checkpoint heartbeats
                            # stream ahead of the terminal result.
                            while terminal is None:
                                _, status, value = slot.conn.recv()
                                if status == "checkpoint":
                                    state.checkpoint = value
                                    state.last_beat = time.monotonic()
                                    if not slot.conn.poll():
                                        break
                                else:
                                    terminal = (status, value)
                        except (EOFError, OSError):
                            # Died mid-send (or between recv and send).
                            state.elapsed += now - slot.started
                            requeue_or_fail(index, "worker process died",
                                            crashed=True)
                            slot.item = None
                            self._retire(slot)
                            continue
                        if terminal is None:
                            continue  # only heartbeats so far
                        status, value = terminal
                        state.elapsed += now - slot.started
                        slot.item = None
                        if status == "ok":
                            finish(index, value=value)
                        elif status == "transient":
                            requeue_or_fail(index, value, crashed=False)
                        elif status == "memory":
                            # The worker's heap is suspect after a
                            # MemoryError (RLIMIT_AS ceiling): replace
                            # the process; the retry resumes from the
                            # last checkpoint.
                            state.memory_killed = True
                            requeue_or_fail(index, value, crashed=False)
                            self._retire(slot)
                        else:
                            finish(index, error=value)
                    elif not slot.proc.is_alive() and not slot.conn.poll():
                        state.elapsed += now - slot.started
                        requeue_or_fail(index, "worker process died",
                                        crashed=True)
                        slot.item = None
                        self._retire(slot)
                    elif timeout is not None and now - slot.started > timeout:
                        reap(slot, index,
                             f"wall-clock timeout after {timeout:g}s",
                             now=now)
                    elif heartbeats and stall_timeout is not None and \
                            state.last_beat and \
                            now - state.last_beat > stall_timeout:
                        # No heartbeat for a full stall window: hung, not
                        # slow (a live checkpoint-capable worker beats on
                        # every processed candidate).
                        state.hung = True
                        reap(slot, index,
                             f"no heartbeat for {stall_timeout:g}s (hung)",
                             now=now)
        except KeyboardInterrupt:
            self._abort()
            raise SchedulerInterrupt(
                f"interrupted with {len(outcomes)}/{len(payloads)} items "
                "done") from None
        finally:
            if previous_term is not None:
                try:
                    signal.signal(signal.SIGTERM, previous_term)
                except ValueError:
                    pass
        return [outcomes[i] for i in range(len(payloads))]
