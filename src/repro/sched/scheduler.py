"""Fault-isolated parallel work-item scheduler.

Fans independent work items out over a pool of worker *processes* (one
long-lived process per job slot, fed over pipes), with:

- **crash isolation** — a worker that dies (segfault, ``os._exit``,
  OOM-kill) produces an errored outcome for its item and a fresh worker
  process; the batch always completes;
- **wall-clock timeouts** — a hung item is hard-killed at its deadline
  (``concurrent.futures.ProcessPoolExecutor`` cannot do this: a running
  future is uncancellable, so the pool keeps its own slots);
- **bounded retries** — crashed items and items raising
  :class:`TransientError` are re-queued up to ``retries`` extra
  attempts; deterministic failures (ordinary exceptions) and timeouts
  are not retried;
- **a deterministic serial fallback** — ``jobs <= 1``, an unavailable
  ``multiprocessing``, or pickling-hostile payloads all run the same
  items in-process, in order, with identical outcome structure.

Results are returned in submission order regardless of completion
order, so downstream output is byte-stable across ``--jobs`` settings.

Worker processes persist across items, so worker-side memoization (the
compiled-module and S-AEG caches in :mod:`repro.sched.worker`) pays off
when many items share a translation unit.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["ItemOutcome", "TransientError", "run_items", "default_jobs"]

JOBS_ENV = "REPRO_JOBS"

# Parent-loop tick: bounds how late a deadline kill or crash detection
# can fire.  Small enough to be unnoticeable, large enough to be free.
_TICK_SECONDS = 0.05


class TransientError(Exception):
    """Raised by a worker to request a retry (e.g. a flaky external
    resource).  Ordinary exceptions are deterministic failures and are
    not retried."""


def default_jobs() -> int:
    """``$REPRO_JOBS`` when set and valid, else 1 (serial)."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


@dataclass
class ItemOutcome:
    """What happened to one work item."""

    index: int
    value: Any = None
    error: str | None = None
    timed_out: bool = False
    crashed: bool = False
    attempts: int = 0
    elapsed: float = 0.0       # wall seconds across all attempts

    @property
    def ok(self) -> bool:
        return self.error is None


def run_items(worker: Callable[[Any], Any], payloads: list,
              *, jobs: int = 1, timeout: float | None = None,
              retries: int = 1) -> list[ItemOutcome]:
    """Run ``worker(payload)`` for every payload; never raises for
    per-item failures.  ``timeout`` is a per-item wall-clock limit
    (parallel mode only — a serial run cannot kill itself; the engines'
    cooperative ``ClouConfig.timeout_seconds`` budget covers that path).
    """
    if not payloads:
        return []
    if jobs > 1:
        pool_or_reason = _try_parallel(worker, payloads, jobs)
        if isinstance(pool_or_reason, _Pool):
            with pool_or_reason as pool:
                return pool.run(payloads, timeout=timeout, retries=retries)
    return _run_serial(worker, payloads, retries=retries)


def _run_serial(worker, payloads, *, retries: int) -> list[ItemOutcome]:
    outcomes = []
    for index, payload in enumerate(payloads):
        outcome = ItemOutcome(index=index)
        started = time.monotonic()
        while True:
            outcome.attempts += 1
            try:
                outcome.value = worker(payload)
                outcome.error = None
                break
            except TransientError as error:
                outcome.error = f"{type(error).__name__}: {error}"
                if outcome.attempts > retries:
                    break
            except Exception as error:
                outcome.error = f"{type(error).__name__}: {error}"
                break
        outcome.elapsed = time.monotonic() - started
        outcomes.append(outcome)
    return outcomes


# ----------------------------------------------------------------------
# Parallel pool
# ----------------------------------------------------------------------


def _try_parallel(worker, payloads, jobs) -> "_Pool | str":
    """A ready pool, or a reason string for falling back to serial."""
    try:
        import multiprocessing as mp

        methods = mp.get_all_start_methods()
        method = "fork" if "fork" in methods else methods[0]
        ctx = mp.get_context(method)
    except (ImportError, ValueError, OSError) as error:
        return f"multiprocessing unavailable: {error}"
    try:
        # Payloads cross a pipe in both modes; the worker itself only
        # needs to pickle under spawn/forkserver.
        pickle.dumps(payloads)
        if method != "fork":
            pickle.dumps(worker)
    except Exception as error:
        return f"pickling-hostile workload: {type(error).__name__}"
    return _Pool(ctx, worker, jobs=min(jobs, len(payloads)))


def _worker_loop(worker, conn):
    """Runs in the child: receive ``(index, payload)``, send
    ``(index, status, value)``.  Exits on the ``None`` sentinel or a
    closed pipe."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        index, payload = message
        try:
            value = worker(payload)
            status = "ok"
        except TransientError as error:
            value, status = f"{type(error).__name__}: {error}", "transient"
        except Exception as error:
            value, status = f"{type(error).__name__}: {error}", "error"
        try:
            conn.send((index, status, value))
        except Exception as error:
            # The *result* failed to pickle; report that instead of dying.
            conn.send((index, "error",
                       f"unpicklable result: {type(error).__name__}: {error}"))


@dataclass
class _Slot:
    proc: Any
    conn: Any
    item: int | None = None      # index of the in-flight item
    started: float = 0.0


@dataclass
class _Pending:
    index: int
    attempts: int = 0
    elapsed: float = 0.0
    last_error: str | None = None
    crashed: bool = False


class _Pool:
    def __init__(self, ctx, worker, jobs: int):
        self._ctx = ctx
        self._worker = worker
        self.jobs = jobs
        self._slots: list[_Slot] = []

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._shutdown()
        return False

    def _spawn(self) -> _Slot:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_loop, args=(self._worker, child_conn), daemon=True)
        proc.start()
        child_conn.close()
        slot = _Slot(proc=proc, conn=parent_conn)
        self._slots.append(slot)
        return slot

    def _retire(self, slot: _Slot) -> None:
        try:
            slot.conn.close()
        except OSError:
            pass
        if slot.proc.is_alive():
            slot.proc.kill()
        slot.proc.join()
        self._slots.remove(slot)

    def _shutdown(self) -> None:
        for slot in list(self._slots):
            try:
                slot.conn.send(None)
            except (OSError, ValueError):
                pass
        for slot in list(self._slots):
            slot.proc.join(timeout=0.5)
            self._retire(slot)

    def run(self, payloads, *, timeout: float | None,
            retries: int) -> list[ItemOutcome]:
        from multiprocessing.connection import wait as conn_wait

        states = {i: _Pending(index=i) for i in range(len(payloads))}
        queue = deque(range(len(payloads)))
        outcomes: dict[int, ItemOutcome] = {}

        def finish(index: int, **kwargs) -> None:
            state = states[index]
            outcomes[index] = ItemOutcome(
                index=index, attempts=state.attempts,
                elapsed=state.elapsed, **kwargs)

        def requeue_or_fail(index: int, error: str, crashed: bool) -> None:
            state = states[index]
            state.last_error, state.crashed = error, crashed
            if state.attempts <= retries:
                queue.append(index)
            else:
                finish(index, error=error, crashed=crashed)

        while len(outcomes) < len(payloads):
            # Feed idle slots, spawning up to the job budget.
            while queue:
                slot = next((s for s in self._slots if s.item is None), None)
                if slot is None and len(self._slots) < self.jobs:
                    slot = self._spawn()
                if slot is None:
                    break
                index = queue.popleft()
                states[index].attempts += 1
                states[index].crashed = False
                try:
                    slot.conn.send((index, payloads[index]))
                except pickle.PicklingError as error:
                    states[index].attempts -= 1
                    finish(index, error=f"unpicklable payload: {error}")
                    continue
                except (OSError, ValueError):
                    # The worker died while idle; replace it and retry
                    # the send without charging the item an attempt.
                    states[index].attempts -= 1
                    queue.appendleft(index)
                    self._retire(slot)
                    continue
                slot.item = index
                slot.started = time.monotonic()

            busy = [slot for slot in self._slots if slot.item is not None]
            if not busy:
                if queue:
                    continue
                break  # defensive: nothing running, nothing queued
            ready = conn_wait([slot.conn for slot in busy],
                              timeout=_TICK_SECONDS)
            now = time.monotonic()
            for slot in busy:
                index = slot.item
                if index is None:
                    continue
                state = states[index]
                if slot.conn in ready:
                    try:
                        message = slot.conn.recv()
                    except (EOFError, OSError):
                        # Died mid-send (or between recv and send).
                        state.elapsed += now - slot.started
                        requeue_or_fail(index, "worker process died",
                                        crashed=True)
                        slot.item = None
                        self._retire(slot)
                        continue
                    _, status, value = message
                    state.elapsed += now - slot.started
                    slot.item = None
                    if status == "ok":
                        finish(index, value=value)
                    elif status == "transient":
                        requeue_or_fail(index, value, crashed=False)
                    else:
                        finish(index, error=value)
                elif not slot.proc.is_alive() and not slot.conn.poll():
                    state.elapsed += now - slot.started
                    requeue_or_fail(index, "worker process died",
                                    crashed=True)
                    slot.item = None
                    self._retire(slot)
                elif timeout is not None and now - slot.started > timeout:
                    state.elapsed += now - slot.started
                    finish(index,
                           error=f"wall-clock timeout after {timeout:g}s",
                           timed_out=True)
                    slot.item = None
                    self._retire(slot)  # the only way to stop a hung item
        return [outcomes[i] for i in range(len(payloads))]
