"""The unified Clou analysis API: :class:`ClouSession`.

A session owns the knobs that used to be sprinkled across the
``analyze_*`` / ``repair_*`` / lint free functions — the
:class:`ClouConfig`, the job count, the per-item wall-clock timeout, the
retry budget, and the on-disk result cache — and exposes one batch
entrypoint, :meth:`ClouSession.run`, over :class:`AnalysisRequest`
values::

    from repro.sched import AnalysisRequest, ClouSession

    session = ClouSession(jobs=4)
    [result] = session.run([AnalysisRequest(source=open("victim.c").read(),
                                            engine="pht")])
    print(result.report.summary())

Convenience wrappers (:meth:`analyze`, :meth:`repair`, :meth:`lint`)
cover the one-request case; the deprecated module-level functions in
:mod:`repro.clou.driver` are thin shims over them.

Each request expands into independent ``(function, engine)`` work items
that the scheduler fans out with crash isolation, timeouts, retries, and
content-addressed caching (see :mod:`repro.sched.scheduler` and
:mod:`repro.sched.cache`).  Item results are reassembled in request
order, so output is byte-identical across ``jobs`` settings and across
cached/uncached runs.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace as dc_replace

from repro.analysis.lint import LintReport, lint_report_dict, \
    lint_report_from_dict
from repro.clou.engine import CLOU_DEFAULT_CONFIG, ClouConfig, ENGINES
from repro.clou.repair import RepairResult
from repro.clou.report import FunctionReport, ModuleReport
from repro.clou.serialize import function_report_dict, \
    function_report_from_dict, module_report_dict, module_report_from_dict, \
    repair_result_dict, repair_result_from_dict
from repro.errors import AnalysisError, ReproError
from repro.sched import worker
from repro.sched.cache import ResultCache, default_cache_dir, item_cache_key
from repro.sched.digest import function_digests
from repro.sched.scheduler import default_jobs, run_items
from repro.sched.stats import ItemStats, SessionStats

__all__ = ["AnalysisRequest", "AnalysisResult", "ClouSession",
           "REQUEST_SCHEMA_VERSION"]

_KINDS = ("analyze", "repair", "lint")

#: Version of the AnalysisRequest/AnalysisResult wire dicts (the daemon
#: protocol rides on these).  Bump on incompatible field changes; both
#: ``from_dict`` sides reject versions they do not know.
REQUEST_SCHEMA_VERSION = 1

_UNSET = object()


@dataclass(frozen=True)
class AnalysisRequest:
    """One unit of user intent: analyze, repair, or lint one source.

    This is the single currency of the session API *and* the daemon
    wire protocol: build one with :meth:`analyze` / :meth:`repair` /
    :meth:`lint` / :meth:`for_module`, pass it to
    :meth:`ClouSession.run` (or the single-request convenience methods),
    or ship it across a socket via :meth:`to_dict` /
    :meth:`from_dict`.
    """

    source: str
    kind: str = "analyze"               # 'analyze' | 'repair' | 'lint'
    engine: str = "pht"                 # detection engine (analyze/repair)
    name: str = ""                      # module name (e.g. the file path)
    functions: tuple[str, ...] = ()     # () = every public function
    config: ClouConfig | None = None    # None = the session's config
    secrets: tuple[str, ...] = ()       # lint: secret symbol names
    public: tuple[str, ...] = ()        # lint: exemptions from the default
    strategy: str = "lfence"            # repair: 'lfence' | 'protect'
    #: Pre-compiled :class:`repro.ir.Module` for in-process analysis —
    #: never serialized, never cached (there is no source to key on).
    module: object | None = field(default=None, compare=False, repr=False)

    # -- constructors (the former kwarg soup of ClouSession.analyze) ---

    @classmethod
    def analyze(cls, source: str, *, engine: str = "pht", name: str = "",
                functions: tuple[str, ...] = (),
                config: ClouConfig | None = None) -> "AnalysisRequest":
        """An analyze request over C source text."""
        return cls(source=source, kind="analyze", engine=engine, name=name,
                   functions=tuple(functions), config=config)

    @classmethod
    def repair(cls, source: str, *, engine: str = "pht", name: str = "",
               functions: tuple[str, ...] = (),
               config: ClouConfig | None = None,
               strategy: str = "lfence") -> "AnalysisRequest":
        """A fence-repair request over C source text."""
        return cls(source=source, kind="repair", engine=engine, name=name,
                   functions=tuple(functions), config=config,
                   strategy=strategy)

    @classmethod
    def lint(cls, source: str, *, name: str = "",
             secrets: tuple[str, ...] = (),
             public: tuple[str, ...] = ()) -> "AnalysisRequest":
        """A constant-time lint request over C source text."""
        return cls(source=source, kind="lint", name=name,
                   secrets=tuple(secrets), public=tuple(public))

    @classmethod
    def for_module(cls, module, *, engine: str = "pht",
                   functions: tuple[str, ...] = (),
                   config: ClouConfig | None = None) -> "AnalysisRequest":
        """An analyze request over a pre-compiled IR module.  Runs
        serial and in-process (no cache, no worker pool — the module
        never crosses a process or wire boundary)."""
        return cls(source="", kind="analyze", engine=engine,
                   name=getattr(module, "name", "") or "<module>",
                   functions=tuple(functions), config=config, module=module)

    # -- wire form ----------------------------------------------------

    def to_dict(self) -> dict:
        """The versioned wire dict (byte-stable once JSON-encoded with
        sorted keys).  Module-backed requests cannot cross the wire."""
        if self.module is not None:
            raise ValueError("module-backed AnalysisRequests are "
                             "in-process only and cannot be serialized")
        return {
            "v": REQUEST_SCHEMA_VERSION,
            "kind": self.kind,
            "source": self.source,
            "engine": self.engine,
            "name": self.name,
            "functions": list(self.functions),
            "config": (self.config.to_dict()
                       if self.config is not None else None),
            "secrets": list(self.secrets),
            "public": list(self.public),
            "strategy": self.strategy,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisRequest":
        if not isinstance(data, dict):
            raise ValueError("AnalysisRequest.from_dict needs a dict")
        version = data.get("v")
        if version != REQUEST_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported AnalysisRequest schema v{version!r} "
                f"(this build speaks v{REQUEST_SCHEMA_VERSION})")
        kind = data.get("kind", "analyze")
        if kind not in _KINDS:
            raise ValueError(f"unknown request kind {kind!r}; "
                             f"choose from {_KINDS}")
        config = data.get("config")
        return cls(
            source=data.get("source", ""),
            kind=kind,
            engine=data.get("engine", "pht"),
            name=data.get("name", ""),
            functions=tuple(data.get("functions", ())),
            config=(ClouConfig.from_dict(config)
                    if config is not None else None),
            secrets=tuple(data.get("secrets", ())),
            public=tuple(data.get("public", ())),
            strategy=data.get("strategy", "lfence"),
        )


@dataclass
class AnalysisResult:
    """The outcome of one request.  Exactly one of ``report`` /
    ``repairs`` / ``lint`` is populated on success (matching the request
    kind); ``error``/``exception`` capture request-level failures such
    as parse errors, leaving sibling requests unaffected."""

    request: AnalysisRequest
    report: ModuleReport | None = None
    repairs: list[RepairResult] | None = None
    lint: LintReport | None = None
    error: str | None = None
    exception: Exception | None = None
    stats: SessionStats = field(default_factory=SessionStats)

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict:
        """The versioned wire dict.  Reports use their *stable* JSON
        form (no wall-clock fields), so a daemon response serializes
        byte-identically to a fresh CLI run; ``exception`` objects never
        cross the wire (``error`` carries the message)."""
        return {
            "v": REQUEST_SCHEMA_VERSION,
            "request": self.request.to_dict(),
            "report": (module_report_dict(self.report, stable=True)
                       if self.report is not None else None),
            "repairs": ([repair_result_dict(r) for r in self.repairs]
                        if self.repairs is not None else None),
            "lint": (lint_report_dict(self.lint)
                     if self.lint is not None else None),
            "error": self.error,
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisResult":
        if not isinstance(data, dict):
            raise ValueError("AnalysisResult.from_dict needs a dict")
        version = data.get("v")
        if version != REQUEST_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported AnalysisResult schema v{version!r} "
                f"(this build speaks v{REQUEST_SCHEMA_VERSION})")
        report = data.get("report")
        repairs = data.get("repairs")
        lint = data.get("lint")
        stats = data.get("stats")
        return cls(
            request=AnalysisRequest.from_dict(data["request"]),
            report=(module_report_from_dict(report)
                    if report is not None else None),
            repairs=([repair_result_from_dict(r) for r in repairs]
                     if repairs is not None else None),
            lint=(lint_report_from_dict(lint)
                  if lint is not None else None),
            error=data.get("error"),
            stats=(SessionStats.from_dict(stats)
                   if stats is not None else SessionStats()),
        )


@dataclass
class _Item:
    """One scheduled unit of work, bookkeeping-side."""

    request_index: int
    function: str                  # "" for lint (whole-module) items
    payload: dict
    label: str
    cache_key: str | None = None   # None = uncacheable (repair)
    cached_value: object = None
    outcome_value: object = None
    stats: ItemStats | None = None
    local: bool = False            # module-backed: run in-process, serial
    corrupt: int = 0               # corrupt cache entries hit by the probe


class ClouSession:
    """Configuration + executor + cache for a batch of Clou analyses.

    Parameters
    ----------
    config:
        Default :class:`ClouConfig` for requests that do not carry one.
    jobs:
        Worker process count; ``None`` reads ``$REPRO_JOBS`` (default 1,
        the deterministic serial path).
    timeout:
        Per-item wall-clock limit in seconds.  In parallel mode a hung
        item is hard-killed at the deadline; the serial path relies on
        the engines' cooperative ``ClouConfig.timeout_seconds`` budget.
    retries:
        Extra attempts for crashed workers / transient failures.
        Wall-clock and stall kills also retry when the dead attempt
        left a checkpoint to resume from.
    cache / cache_dir:
        On-disk result cache.  ``cache_dir=None`` falls back to
        ``$REPRO_CACHE_DIR``; caching is off when neither is set or when
        ``cache=False``.  Only clean, *complete* results are stored:
        errored, timed-out, skipped, or undecided reports never enter
        the cache.
    memory_limit_mb:
        Per-worker address-space ceiling (``RLIMIT_AS``); a worker
        exceeding it dies with a recoverable MemoryError and the item
        resumes from its last checkpoint.  Parallel mode only.
    stall_timeout:
        Heartbeat limit in seconds: a worker that streams no checkpoint
        for this long is presumed hung and killed (distinct from
        ``timeout``, which bounds total item time — a slow-but-beating
        item survives the stall check).  Parallel mode only.
    """

    def __init__(self, config: ClouConfig | None = None, *,
                 jobs: int | None = None, timeout: float | None = None,
                 retries: int = 1, cache: bool = True,
                 cache_dir: str | None = None,
                 memory_limit_mb: int | None = None,
                 stall_timeout: float | None = None):
        self.config = config if config is not None else CLOU_DEFAULT_CONFIG
        self.jobs = max(1, jobs) if jobs is not None else default_jobs()
        self.timeout = timeout
        self.retries = retries
        self.memory_limit_mb = memory_limit_mb
        self.stall_timeout = stall_timeout
        directory = cache_dir if cache_dir is not None else default_cache_dir()
        self.cache = ResultCache(directory) if (cache and directory) else None
        self.stats = SessionStats(jobs=self.jobs)

    # -- public API --------------------------------------------------------

    def run(self, requests: list[AnalysisRequest], *,
            deadline: float | None = None) -> list[AnalysisResult]:
        """Run a batch of requests; per-request failures are captured in
        the corresponding :class:`AnalysisResult`, never raised.

        ``deadline`` is a wall-clock Unix timestamp (``time.time()``
        domain — the daemon threads the client's envelope deadline
        here).  Work items clamp their cooperative solver budget to the
        remaining time, so an over-deadline batch degrades (verdicts
        move toward *unknown*, reported incomplete, never cached)
        instead of overrunning.  The deadline never reaches cache keys
        or report config, so ``--json`` output on paths that finish in
        time is byte-identical to an undeadlined run.
        """
        started = time.monotonic()
        results = [AnalysisResult(request=req) for req in requests]
        items: list[_Item] = []
        for index, request in enumerate(requests):
            try:
                items.extend(self._expand(index, request))
            except ReproError as error:
                results[index].error = str(error)
                results[index].exception = error
        self._execute(items, deadline=deadline)
        batch = SessionStats(jobs=self.jobs)
        for index, result in enumerate(results):
            own = [item for item in items if item.request_index == index]
            self._assemble(result, own)
            result.stats.jobs = self.jobs
            result.stats.wall_seconds = time.monotonic() - started
            batch.merge(result.stats)
        batch.wall_seconds = time.monotonic() - started
        self.stats.merge(batch)
        return results

    def _coerce(self, request, kind: str, kwargs: dict) -> AnalysisRequest:
        """Accept the new currency (an :class:`AnalysisRequest`) or the
        deprecated ``(source, **kwargs)`` soup, normalizing to a
        request.  The legacy path warns — the repo's own suite escalates
        that warning to an error (setup.cfg), the PR 2 precedent."""
        if isinstance(request, AnalysisRequest):
            extra = {k: v for k, v in kwargs.items() if v is not _UNSET}
            if extra:
                raise TypeError(
                    f"ClouSession.{kind}(AnalysisRequest) takes no extra "
                    f"keywords (got {sorted(extra)}); set the fields on "
                    f"the request instead")
            if request.kind != kind:
                raise AnalysisError(
                    f"ClouSession.{kind}() got a {request.kind!r} request")
            return request
        warnings.warn(
            f"passing source text and keywords to ClouSession.{kind} is "
            f"deprecated; build an AnalysisRequest.{kind}(...) instead",
            DeprecationWarning, stacklevel=3)
        build = getattr(AnalysisRequest, kind)
        return build(request, **{key: value for key, value in kwargs.items()
                                 if value is not _UNSET})

    def analyze(self, request, *, engine=_UNSET, name=_UNSET,
                config=_UNSET, functions=_UNSET) -> ModuleReport:
        """Analyze one :class:`AnalysisRequest` (kind ``analyze``) and
        return its :class:`ModuleReport`; raises on parse errors, like
        the historical ``analyze_source``.

        .. deprecated:: passing raw source text plus keywords — build
           the request with :meth:`AnalysisRequest.analyze` instead.
        """
        request = self._coerce(request, "analyze", {
            "engine": engine, "name": name, "config": config,
            "functions": functions})
        [result] = self.run([request])
        if result.exception is not None:
            raise result.exception
        return result.report

    def repair(self, request, *, engine=_UNSET, name=_UNSET, config=_UNSET,
               strategy=_UNSET, functions=_UNSET) -> list[RepairResult]:
        request = self._coerce(request, "repair", {
            "engine": engine, "name": name, "config": config,
            "strategy": strategy, "functions": functions})
        [result] = self.run([request])
        if result.exception is not None:
            raise result.exception
        return result.repairs

    def lint(self, request, *, name=_UNSET, secrets=_UNSET,
             public=_UNSET) -> LintReport:
        request = self._coerce(request, "lint", {
            "name": name, "secrets": secrets, "public": public})
        [result] = self.run([request])
        if result.exception is not None:
            raise result.exception
        if result.error is not None:
            raise AnalysisError(result.error)
        return result.lint

    def analyze_module(self, module, *, engine: str = "pht",
                       config: ClouConfig | None = None,
                       functions: tuple[str, ...] = ()) -> ModuleReport:
        """Deprecated: analyze a pre-compiled :class:`repro.ir.Module`.
        Build :meth:`AnalysisRequest.for_module` and call
        :meth:`analyze` (or :meth:`run`) instead — module-backed
        requests share the same ``run()`` code path, executing serial
        and in-process (no cache: there is no source text to key on)."""
        warnings.warn(
            "ClouSession.analyze_module is deprecated; pass "
            "AnalysisRequest.for_module(module, ...) to "
            "ClouSession.analyze instead",
            DeprecationWarning, stacklevel=2)
        return self.analyze(AnalysisRequest.for_module(
            module, engine=engine, functions=tuple(functions),
            config=config))

    # -- request expansion -------------------------------------------------

    def _config_for(self, request: AnalysisRequest) -> ClouConfig:
        return request.config if request.config is not None else self.config

    def _expand(self, index: int, request: AnalysisRequest) -> list[_Item]:
        if request.kind not in _KINDS:
            raise AnalysisError(f"unknown request kind {request.kind!r}; "
                                f"choose from {_KINDS}")
        config = self._config_for(request)
        if request.kind == "lint":
            worker.module_for(request.source, request.name)  # parse errors
            key = item_cache_key(
                kind="lint", source=request.source,
                secrets=request.secrets, public=request.public)
            payload = {
                "kind": "lint", "source": request.source,
                "name": request.name, "config": None,
                "secrets": request.secrets, "public": request.public,
            }
            label = f"lint:{request.name or '<module>'}"
            return [_Item(request_index=index, function="",
                          payload=payload, label=label, cache_key=key)]
        if request.engine not in ENGINES:
            raise AnalysisError(
                f"unknown engine {request.engine!r}; choose from "
                f"{sorted(ENGINES)}")
        if request.module is not None:
            return self._expand_module(index, request, config)
        module = worker.module_for(request.source, request.name)
        names = request.functions or tuple(
            f.name for f in module.public_functions())
        # Function-granular keying (incremental re-analysis): an edit to
        # one function only moves that function's cache address.  When
        # the splitter cannot classify the source, fall back to the
        # module-level digest — strictly more invalidation, never less.
        digests = (function_digests(request.source)
                   if request.kind == "analyze" else None) or {}
        items = []
        for function_name in names:
            payload = {
                "kind": request.kind, "source": request.source,
                "name": request.name, "function": function_name,
                "engine": request.engine, "config": config.to_dict(),
            }
            key = None
            if request.kind == "analyze":
                key = item_cache_key(
                    kind="analyze", source=request.source,
                    source_key=digests.get(function_name, ""),
                    function=function_name, engine=request.engine,
                    config_key=config.cache_key())
            else:
                payload["strategy"] = request.strategy
            items.append(_Item(
                request_index=index, function=function_name,
                payload=payload, cache_key=key,
                label=f"{function_name}/{request.engine}"))
        return items

    def _expand_module(self, index: int, request: AnalysisRequest,
                       config: ClouConfig) -> list[_Item]:
        """Module-backed analyze requests: one in-process serial item
        per function (uncached and unscheduled — a compiled module has
        no source to key on and never crosses a process boundary)."""
        module = request.module
        names = request.functions or tuple(
            f.name for f in module.public_functions())
        return [
            _Item(
                request_index=index, function=function_name,
                payload={"kind": "analyze", "module": module,
                         "name": request.name, "function": function_name,
                         "engine": request.engine, "config": config},
                label=f"{function_name}/{request.engine}", local=True)
            for function_name in names
        ]

    # -- execution ---------------------------------------------------------

    def _execute(self, items: list[_Item],
                 deadline: float | None = None) -> None:
        misses: list[_Item] = []
        for item in items:
            if item.local:
                self._execute_local(item)
                continue
            before = self.cache.corrupt if self.cache is not None else 0
            cached = self._probe_cache(item)
            item.corrupt = ((self.cache.corrupt - before)
                            if self.cache is not None else 0)
            if cached is not None:
                item.cached_value = cached
                item.stats = ItemStats(label=item.label,
                                       kind=item.payload["kind"],
                                       cache="hit")
            else:
                misses.append(item)
        timeout = self.timeout
        if deadline is not None:
            # The deadline rides in the payload (the worker clamps its
            # cooperative solver budget) — injected *after* cache keys
            # were computed in _expand, so it can never move an item's
            # cache address.  The parallel-mode hard kill is clamped to
            # the remaining wall budget as a backstop.
            for item in misses:
                item.payload["deadline"] = deadline
            remaining = max(0.1, deadline - time.time())
            timeout = remaining if timeout is None else min(timeout,
                                                            remaining)
        outcomes = run_items(
            worker.execute_item, [item.payload for item in misses],
            jobs=self.jobs, timeout=timeout, retries=self.retries,
            memory_limit_mb=self.memory_limit_mb,
            stall_timeout=self.stall_timeout)
        for item, outcome in zip(misses, outcomes):
            kind = item.payload["kind"]
            cache_state = "miss" if (self.cache is not None
                                     and item.cache_key) else "off"
            item.stats = ItemStats(
                label=item.label, kind=kind, elapsed=outcome.elapsed,
                attempts=outcome.attempts, cache=cache_state,
                cache_corrupt=bool(item.corrupt),
                timed_out=outcome.timed_out, crashed=outcome.crashed,
                errored=not outcome.ok, resumed=outcome.resumed,
                memory_killed=outcome.memory_killed)
            if outcome.ok:
                item.outcome_value = outcome.value
                self._store_cache(item)
            else:
                item.outcome_value = self._errored_value(item, outcome)

    def _execute_local(self, item: _Item) -> None:
        """Run one module-backed item inline (serial, uncached)."""
        started = time.monotonic()
        value = worker.analyze_module_item(
            item.payload["module"], item.payload["function"],
            item.payload["engine"], item.payload["config"])
        item.outcome_value = value
        item.stats = ItemStats(
            label=item.label, kind="analyze",
            elapsed=time.monotonic() - started,
            errored=value.error is not None)

    def _errored_value(self, item: _Item, outcome):
        kind = item.payload["kind"]
        if kind == "analyze":
            # A permanently-failed item may still carry a checkpoint:
            # salvage the witnesses found so far as a partial report
            # (verdict degrades to unknown, never cached).
            salvaged = worker.report_from_checkpoint(
                item.payload, outcome.partial, outcome.error)
            if salvaged is not None:
                salvaged.elapsed = outcome.elapsed
                return salvaged
            return FunctionReport(
                function=item.function, engine=item.payload["engine"],
                error=outcome.error, timed_out=outcome.timed_out,
                elapsed=outcome.elapsed)
        if kind == "repair":
            return RepairResult(
                function=item.function, engine=item.payload["engine"],
                fences=[], before=None, after=None, error=outcome.error)
        return outcome.error  # lint: request-level error string

    def _probe_cache(self, item: _Item):
        if self.cache is None or item.cache_key is None:
            return None
        payload = self.cache.get(item.cache_key)
        if payload is None:
            return None
        try:
            if item.payload["kind"] == "analyze":
                return function_report_from_dict(payload["report"])
            return lint_report_from_dict(payload["report"])
        except (KeyError, ValueError, TypeError):
            # Valid JSON at the right schema version, but the report
            # inside does not deserialize — as corrupt as bad bytes.
            self.cache.quarantine(item.cache_key)
            return None

    def _store_cache(self, item: _Item) -> None:
        if self.cache is None or item.cache_key is None:
            return
        value = item.outcome_value
        if isinstance(value, FunctionReport):
            if not value.complete:
                # Never cache failures or degraded coverage: a cached
                # entry must be byte-identical to a clean fresh run.
                return
            payload = {"report": function_report_dict(value, stable=False)}
        elif isinstance(value, LintReport):
            payload = {"report": lint_report_dict(value)}
        else:
            return
        self.cache.put(item.cache_key, payload)

    # -- assembly ----------------------------------------------------------

    def _assemble(self, result: AnalysisResult, items: list[_Item]) -> None:
        request = result.request
        for item in items:
            if item.stats is not None:
                result.stats.record(item.stats)
        if result.error is not None:
            return
        values = [item.cached_value if item.cached_value is not None
                  else item.outcome_value for item in items]
        if request.kind == "analyze":
            report = ModuleReport(
                name=request.name or "<module>", engine=request.engine,
                functions=list(values), config=self._config_for(request))
            result.stats.candidates = report.candidates
            result.stats.pruned = report.pruned
            result.stats.skipped = report.skipped
            result.stats.undecided = report.undecided
            for function_report in report.functions:
                result.stats.absorb_sat(function_report.sat_stats)
            report.stats = result.stats
            result.report = report
        elif request.kind == "repair":
            result.repairs = list(values)
        else:
            [value] = values
            if isinstance(value, LintReport):
                result.lint = value
            else:
                result.error = value or "lint failed"
