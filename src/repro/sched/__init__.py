"""Parallel fault-isolated analysis scheduling for Clou (§5's
per-function, per-engine workload is embarrassingly parallel).

Public surface:

- :class:`ClouSession` — config + executor + cache behind one API;
- :class:`AnalysisRequest` / :class:`AnalysisResult` — the batch I/O;
- :class:`SessionStats` / :class:`ItemStats` — observability counters;
- :class:`ResultCache` — the content-addressed on-disk result cache;
- :func:`run_items` / :class:`ItemOutcome` / :class:`TransientError` /
  :class:`SchedulerInterrupt` — the generic work-item scheduler
  underneath;
- :class:`FaultPlan` / :func:`fault_point` — the deterministic fault
  injector behind degradation testing.
"""

from repro.sched.cache import (CACHE_DIR_ENV, ResultCache, default_cache_dir,
                               item_cache_key, source_digest, user_cache_dir)
from repro.sched.digest import function_digests, normalized_digest
from repro.sched.env import SOCKETS_ENV, SOCKET_ENV, TENANT_ENV, \
    env_cache_dir, env_fault_spec, env_jobs, env_socket, env_sockets, \
    env_tenant
from repro.sched.faults import FAULTS_ENV, FaultPlan, FaultSpecError, \
    fault_point, parse_spec
from repro.sched.scheduler import (ItemOutcome, JOBS_ENV, SchedulerInterrupt,
                                   TransientError, default_jobs, run_items)
from repro.sched.session import AnalysisRequest, AnalysisResult, \
    ClouSession, REQUEST_SCHEMA_VERSION
from repro.sched.stats import ItemStats, SessionStats

__all__ = [
    "AnalysisRequest",
    "AnalysisResult",
    "CACHE_DIR_ENV",
    "ClouSession",
    "FAULTS_ENV",
    "FaultPlan",
    "FaultSpecError",
    "ItemOutcome",
    "ItemStats",
    "JOBS_ENV",
    "REQUEST_SCHEMA_VERSION",
    "ResultCache",
    "SOCKETS_ENV",
    "SOCKET_ENV",
    "SchedulerInterrupt",
    "TENANT_ENV",
    "SessionStats",
    "TransientError",
    "default_cache_dir",
    "default_jobs",
    "env_cache_dir",
    "env_fault_spec",
    "env_jobs",
    "env_socket",
    "env_sockets",
    "env_tenant",
    "fault_point",
    "function_digests",
    "item_cache_key",
    "normalized_digest",
    "parse_spec",
    "run_items",
    "source_digest",
    "user_cache_dir",
]
