"""One home for every ``REPRO_*`` environment default.

The CLI, the library :class:`~repro.sched.ClouSession`, and the
``clou serve`` daemon must agree on what the environment means — a
daemon that read ``$REPRO_JOBS`` differently from the CLI would give
different answers depending on which front-end handled the request.
Every accessor below is the *single* implementation; the historical
entry points (``scheduler.default_jobs``, ``cache.default_cache_dir``,
``faults._env_plan``) delegate here.

All accessors are total: malformed values degrade to the documented
default instead of raising, so a stray ``REPRO_JOBS=lots`` never takes
down a daemon at import time.
"""

from __future__ import annotations

import os

__all__ = [
    "CACHE_DIR_ENV",
    "FAULTS_ENV",
    "JOBS_ENV",
    "SOCKETS_ENV",
    "SOCKET_ENV",
    "TENANT_ENV",
    "env_cache_dir",
    "env_fault_spec",
    "env_jobs",
    "env_socket",
    "env_sockets",
    "env_tenant",
]

#: Worker process count for :class:`ClouSession` (default 1 = serial).
JOBS_ENV = "REPRO_JOBS"

#: Result-cache directory (unset = caching off for library use; the
#: CLI and daemon fall back to the per-user cache directory).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Deterministic fault-injection spec (see :mod:`repro.sched.faults`).
FAULTS_ENV = "REPRO_FAULTS"

#: Default UNIX socket path for ``clou serve`` / ``clou client``.
SOCKET_ENV = "REPRO_SOCKET"

#: ``os.pathsep``-separated UNIX socket failover list for ``clou
#: client`` (tried in order; wins over ``$REPRO_SOCKET`` when set).
SOCKETS_ENV = "REPRO_SOCKETS"

#: Default tenant name stamped on client envelopes for the daemon's
#: per-tenant admission control (unset = the shared default bucket).
TENANT_ENV = "REPRO_TENANT"


def _text(name: str) -> str:
    return os.environ.get(name, "").strip()


def env_jobs(default: int = 1) -> int:
    """``$REPRO_JOBS`` clamped to ``>= 1``; ``default`` when unset or
    unparseable."""
    raw = _text(JOBS_ENV)
    try:
        return max(1, int(raw)) if raw else max(1, default)
    except ValueError:
        return max(1, default)


def env_cache_dir() -> str | None:
    """``$REPRO_CACHE_DIR`` when set and non-empty, else ``None``."""
    return _text(CACHE_DIR_ENV) or None


def env_fault_spec() -> str | None:
    """``$REPRO_FAULTS`` when set and non-empty, else ``None``."""
    return _text(FAULTS_ENV) or None


def env_socket() -> str | None:
    """``$REPRO_SOCKET`` when set and non-empty, else ``None``."""
    return _text(SOCKET_ENV) or None


def env_sockets() -> tuple[str, ...]:
    """``$REPRO_SOCKETS`` as an ordered failover list (PATH-style
    ``os.pathsep`` separators, empty parts dropped); ``()`` when
    unset."""
    raw = _text(SOCKETS_ENV)
    if not raw:
        return ()
    return tuple(part for part in
                 (piece.strip() for piece in raw.split(os.pathsep))
                 if part)


def env_tenant() -> str | None:
    """``$REPRO_TENANT`` when set and non-empty, else ``None``."""
    return _text(TENANT_ENV) or None
