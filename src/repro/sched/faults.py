"""Deterministic, seeded fault injection for degradation testing.

The analysis stack declares *named injection points* (see
:data:`SITES`); a :class:`FaultPlan` decides, purely as a function of
``(seed, site, hit count)``, whether the Nth arrival at a site fires a
fault.  Everything is deterministic: the same plan against the same
(serial) execution fires the same faults, which is what lets the
``degradation`` fuzz oracle and ``make fault-smoke`` compare a faulted
run against its fault-free twin.

Actions
-------
``crash``
    ``os._exit(86)`` — the process dies without cleanup, exercising the
    scheduler's crash isolation and checkpoint-resume paths.
``hang``
    Sleep far past any reasonable deadline (in small slices, so a
    wall-clock kill reaps the worker promptly), exercising the hung-item
    kill and heartbeat stall detection.
``memory``
    Raise :class:`MemoryError`, exercising the memory-pressure handling
    (the real analogue is a worker hitting its ``RLIMIT_AS`` ceiling).
``budget``
    Cooperative: the *call site* asks :func:`fault_point` and, on
    ``"budget"``, degrades itself (the PathOracle returns UNKNOWN as if
    the solver's conflict budget ran out).  Raising sites ignore it.
``drop`` / ``stall`` / ``garble``
    Serve-layer actions (cooperative, like ``budget``): the daemon's
    transport sites (``serve.*``) interpret them as discarding a
    message, delaying it, or corrupting its bytes.  At ``serve.*``
    sites even ``crash`` is cooperative — it tears down the *connection*
    abruptly, never the daemon process — so a chaos sweep exercises
    client-visible transport failures while the daemon under test
    survives to serve the next seed.  Analysis-layer sites ignore these
    actions.

Spec grammar
------------
A plan is a semicolon-separated list::

    seed=42;budget@oracle.query%0.5;hang@engine.candidate#3

- ``seed=N`` seeds the probabilistic rules (default 0);
- ``ACTION@SITE#N`` fires once, on the Nth arrival at SITE (1-based,
  counted per process — a respawned worker counts from zero again);
- ``ACTION@SITE%P`` fires on each arrival with probability P, decided
  by a hash of ``(seed, site, hit index)`` so it is reproducible and
  identical across processes.

Activation: pass a spec through ``ClouConfig.fault_spec`` (reaches
worker processes through the serialized work-item payload) or set
``$REPRO_FAULTS`` (inherited by forked workers).  Off by default;
when no plan is armed the only cost at a site is one module-attribute
load and a ``None`` check.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from dataclasses import dataclass

from repro.sched.env import FAULTS_ENV, env_fault_spec  # noqa: F401

__all__ = ["ACTIONS", "FAULTS_ENV", "FaultPlan", "FaultSpecError",
           "SERVE_ACTIONS", "SITES", "activate", "active_plan",
           "fault_point", "parse_spec"]

ACTIONS = ("crash", "hang", "memory", "budget", "drop", "stall", "garble")

#: Actions the serve transport sites interpret (see
#: :class:`repro.serve.server.ClouServer`); every serve-site action is
#: cooperative — returned to the caller, never executed here.
SERVE_ACTIONS = ("drop", "stall", "garble", "crash")

#: The injection points the analysis stack declares, for documentation
#: and spec validation ("every defined injection point" in the
#: fault-smoke sweep iterates this).
SITES = {
    "worker.item": "start of one scheduled work item "
                   "(repro.sched.worker.execute_item)",
    "engine.candidate": "right after the Nth candidate transmitter is "
                        "processed and checkpointed (repro.clou.engine); "
                        "N is the candidate's cursor position, stable "
                        "across resume, so a resumed attempt gets past a "
                        "crash/hang here instead of re-firing it",
    "oracle.query": "one PathOracle realizability query that missed the "
                    "memo (repro.clou.aeg); 'budget' forces UNKNOWN",
    "serve.accept": "one accepted daemon connection, before its reader "
                    "thread starts (repro.serve.server); drop/crash "
                    "close it unserved, stall delays it",
    "serve.read": "one request envelope line read off a connection; "
                  "drop ignores it, garble corrupts it before parsing, "
                  "stall delays it, crash drops the connection",
    "serve.write": "one response envelope about to be sent; drop "
                   "discards it (the client times out against its "
                   "deadline), garble corrupts the bytes, stall delays "
                   "the send, crash closes the connection instead",
    "serve.dispatch": "one queued analyze op popped by the dispatcher; "
                      "drop discards it unanswered, stall delays the "
                      "run, crash closes the client's connection",
}

_HANG_SECONDS = 600.0
_HANG_SLICE = 0.05


class FaultSpecError(ValueError):
    """A fault spec string did not parse."""


@dataclass(frozen=True)
class FaultRule:
    """One ``ACTION@SITE`` clause of a plan."""

    action: str
    site: str
    nth: int | None = None          # fire exactly on the nth hit
    probability: float | None = None  # else fire per-hit with this p

    def fires(self, seed: int, hit: int) -> bool:
        """Does this rule fire on the ``hit``-th (1-based) arrival?"""
        if self.nth is not None:
            return hit == self.nth
        digest = zlib.crc32(f"{seed}:{self.site}:{hit}".encode("ascii"))
        return (digest / 0xFFFFFFFF) < (self.probability or 0.0)

    def render(self) -> str:
        if self.nth is not None:
            return f"{self.action}@{self.site}#{self.nth}"
        return f"{self.action}@{self.site}%{self.probability:g}"


class FaultPlan:
    """A parsed spec plus per-process hit counters."""

    def __init__(self, rules: tuple[FaultRule, ...], seed: int = 0):
        self.rules = rules
        self.seed = seed
        self._hits: dict[str, int] = {}
        self.fired: dict[str, int] = {}   # "action@site" -> fire count
        # The analysis paths are single-threaded per process, but the
        # daemon fires serve.* sites from its accept/reader/dispatcher
        # threads concurrently; counters must not race.
        self._lock = threading.Lock()

    def render(self) -> str:
        """The canonical spec string (``parse_spec`` round-trips it)."""
        parts = [f"seed={self.seed}"]
        parts.extend(rule.render() for rule in self.rules)
        return ";".join(parts)

    def fire(self, site: str, hit: int | None = None) -> str | None:
        """Record one arrival at ``site``; the action to take, if any.
        The first matching rule wins.  ``hit`` overrides the per-process
        arrival counter with a caller-supplied position (1-based) —
        sites with resume-stable positions (``engine.candidate``) use
        this so a resumed attempt does not re-fire faults the checkpoint
        already got past."""
        with self._lock:
            arrival = self._hits.get(site, 0) + 1
            self._hits[site] = arrival
            if hit is None:
                hit = arrival
            for rule in self.rules:
                if rule.site == site and rule.fires(self.seed, hit):
                    key = f"{rule.action}@{site}"
                    self.fired[key] = self.fired.get(key, 0) + 1
                    return rule.action
        return None


def parse_spec(spec: str) -> FaultPlan:
    """Parse the grammar in the module docstring."""
    rules: list[FaultRule] = []
    seed = 0
    for raw in spec.split(";"):
        part = raw.strip()
        if not part:
            continue
        if part.startswith("seed="):
            try:
                seed = int(part[len("seed="):])
            except ValueError:
                raise FaultSpecError(f"bad seed in fault spec: {part!r}")
            continue
        if "@" not in part:
            raise FaultSpecError(
                f"bad fault rule {part!r}: expected ACTION@SITE#N or "
                f"ACTION@SITE%P")
        action, _, target = part.partition("@")
        if action not in ACTIONS:
            raise FaultSpecError(
                f"unknown fault action {action!r}; choose from {ACTIONS}")
        nth: int | None = None
        probability: float | None = None
        if "#" in target:
            site, _, count = target.partition("#")
            try:
                nth = int(count)
            except ValueError:
                raise FaultSpecError(f"bad hit count in {part!r}")
            if nth < 1:
                raise FaultSpecError(f"hit count must be >= 1 in {part!r}")
        elif "%" in target:
            site, _, prob = target.partition("%")
            try:
                probability = float(prob)
            except ValueError:
                raise FaultSpecError(f"bad probability in {part!r}")
            if not 0.0 <= probability <= 1.0:
                raise FaultSpecError(
                    f"probability must be in [0, 1] in {part!r}")
        else:
            raise FaultSpecError(
                f"bad fault rule {part!r}: missing #N or %P trigger")
        if site not in SITES:
            raise FaultSpecError(
                f"unknown injection site {site!r}; choose from "
                f"{sorted(SITES)}")
        rules.append(FaultRule(action=action, site=site, nth=nth,
                               probability=probability))
    return FaultPlan(tuple(rules), seed=seed)


# ----------------------------------------------------------------------
# Process-global arming
# ----------------------------------------------------------------------

def _env_plan() -> FaultPlan | None:
    spec = env_fault_spec()
    return parse_spec(spec) if spec else None


# The armed plan.  Module import is the only place the environment is
# consulted, so spawned workers (which re-import) and forked workers
# (which inherit the module state) both see $REPRO_FAULTS.
_plan: FaultPlan | None = _env_plan()
_base_plan: FaultPlan | None = _plan


def active_plan() -> FaultPlan | None:
    return _plan


class activate:
    """Context manager arming ``spec`` for the dynamic extent (a work
    item, usually).  ``spec=None`` keeps whatever is already armed (the
    ``$REPRO_FAULTS`` baseline), so un-faulted items are unaffected."""

    def __init__(self, spec: str | None):
        self._spec = spec
        self._previous: FaultPlan | None = None

    def __enter__(self) -> FaultPlan | None:
        global _plan
        self._previous = _plan
        if self._spec:
            _plan = parse_spec(self._spec)
        return _plan

    def __exit__(self, *exc) -> None:
        global _plan
        _plan = self._previous


def fault_point(site: str, hit: int | None = None) -> str | None:
    """Declare one arrival at an injection point.

    Raising actions (``crash``/``hang``/``memory``) are executed here;
    ``"budget"`` is returned for the call site to degrade cooperatively.
    With no plan armed this is a no-op (one attribute load + compare).
    """
    if _plan is None:
        return None
    action = _plan.fire(site, hit)
    if site.startswith("serve."):
        # Transport sites are always cooperative: the serve layer maps
        # the action onto its connection (crash = connection teardown,
        # never process death — the daemon must outlive its faults).
        return action
    if action == "crash":
        os._exit(86)
    if action == "hang":
        deadline = time.monotonic() + _HANG_SECONDS
        while time.monotonic() < deadline:
            time.sleep(_HANG_SLICE)
        raise TimeoutError(f"injected hang at {site} outlived its "
                           f"{_HANG_SECONDS:g}s backstop")
    if action == "memory":
        raise MemoryError(f"injected memory exhaustion at {site}")
    return action
