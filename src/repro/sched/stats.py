"""Observability for the analysis scheduler.

Every scheduled work item records an :class:`ItemStats`; a
:class:`SessionStats` aggregates them (cache hits/misses, retries,
timeouts, crashes, candidate/pruned counters from the engines, wall and
CPU-work seconds).  ``clou analyze --stats`` prints the summary; the
counters also land on :attr:`repro.clou.report.ModuleReport.stats`.

Wall-clock data never enters the byte-stable ``--json`` output — stats
are printed separately (to stderr under ``--json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ItemStats:
    """One scheduled (function, engine) work item."""

    label: str = ""            # e.g. "victim/pht" or "lint:victim.c"
    kind: str = "analyze"      # 'analyze' | 'repair' | 'lint'
    elapsed: float = 0.0       # worker-side wall seconds (0 for cache hits)
    attempts: int = 1
    cache: str = "off"         # 'hit' | 'miss' | 'off'
    cache_corrupt: bool = False  # the probe quarantined a corrupt entry
    timed_out: bool = False
    crashed: bool = False
    errored: bool = False
    resumed: int = 0           # attempts that resumed from a checkpoint
    memory_killed: bool = False  # some attempt hit the RLIMIT_AS ceiling

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)


@dataclass
class SessionStats:
    """Aggregated scheduler counters for a session (or one request)."""

    jobs: int = 1
    items: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_corrupt: int = 0     # corrupt entries quarantined on read
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    errors: int = 0
    resumed: int = 0           # checkpoint-resumed attempts
    memory_killed: int = 0     # items killed by the memory ceiling
    budget_exhausted: int = 0  # solver queries that returned UNKNOWN
    candidates: int = 0
    pruned: int = 0
    skipped: int = 0           # candidates never examined (budget/cap)
    undecided: int = 0         # σ-queries degraded to UNKNOWN
    sat_queries: int = 0       # PathOracle assumption queries (memo misses)
    sat_memo_hits: int = 0     # realizability verdicts served from the memo
    sat_encodes: int = 0       # Fig. 7 encodings built (one per S-AEG)
    sat_learned: int = 0       # clauses learned across all solvers
    sat_deleted: int = 0       # learned clauses dropped by DB reduction
    sat_propagations: int = 0
    work_seconds: float = 0.0  # sum of per-item worker time
    wall_seconds: float = 0.0  # parent-side elapsed for the batch
    per_item: list[ItemStats] = field(default_factory=list)

    def absorb_sat(self, sat_stats: dict) -> None:
        """Fold one FunctionReport's solver counter deltas in (empty for
        cache hits and engine runs that issued no realizability query)."""
        if not sat_stats:
            return
        self.sat_queries += sat_stats.get("queries", 0)
        self.sat_memo_hits += sat_stats.get("memo_hits", 0)
        self.sat_encodes += sat_stats.get("encodes", 0)
        self.sat_learned += sat_stats.get("learned", 0)
        self.sat_deleted += sat_stats.get("deleted", 0)
        self.sat_propagations += sat_stats.get("propagations", 0)
        self.budget_exhausted += sat_stats.get("unknowns", 0)

    def record(self, item: ItemStats) -> None:
        self.items += 1
        if item.cache == "hit":
            self.cache_hits += 1
        elif item.cache == "miss":
            self.cache_misses += 1
        self.cache_corrupt += int(item.cache_corrupt)
        self.retries += item.retries
        self.timeouts += int(item.timed_out)
        self.crashes += int(item.crashed)
        self.errors += int(item.errored)
        self.resumed += item.resumed
        self.memory_killed += int(item.memory_killed)
        self.work_seconds += item.elapsed
        self.per_item.append(item)

    def merge(self, other: "SessionStats") -> None:
        """Fold another batch's counters into this one (the session keeps
        a running total across every ``run()`` call)."""
        self.items += other.items
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_corrupt += other.cache_corrupt
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.crashes += other.crashes
        self.errors += other.errors
        self.resumed += other.resumed
        self.memory_killed += other.memory_killed
        self.budget_exhausted += other.budget_exhausted
        self.candidates += other.candidates
        self.pruned += other.pruned
        self.skipped += other.skipped
        self.undecided += other.undecided
        self.sat_queries += other.sat_queries
        self.sat_memo_hits += other.sat_memo_hits
        self.sat_encodes += other.sat_encodes
        self.sat_learned += other.sat_learned
        self.sat_deleted += other.sat_deleted
        self.sat_propagations += other.sat_propagations
        self.work_seconds += other.work_seconds
        self.wall_seconds += other.wall_seconds
        self.per_item.extend(other.per_item)

    @property
    def cache_hit_rate(self) -> float:
        probed = self.cache_hits + self.cache_misses
        return self.cache_hits / probed if probed else 0.0

    def to_dict(self) -> dict:
        """The stable wire form (documented in DESIGN.md): plain JSON
        scalars, one key per counter, ``cache_hit_rate`` derived.
        ``per_item`` detail never crosses the wire."""
        return {
            "v": 1,
            "jobs": self.jobs,
            "items": self.items,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "cache_corrupt": self.cache_corrupt,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "errors": self.errors,
            "resumed": self.resumed,
            "memory_killed": self.memory_killed,
            "budget_exhausted": self.budget_exhausted,
            "candidates": self.candidates,
            "pruned": self.pruned,
            "skipped": self.skipped,
            "undecided": self.undecided,
            "sat_queries": self.sat_queries,
            "sat_memo_hits": self.sat_memo_hits,
            "sat_encodes": self.sat_encodes,
            "sat_learned": self.sat_learned,
            "sat_deleted": self.sat_deleted,
            "sat_propagations": self.sat_propagations,
            "work_seconds": round(self.work_seconds, 4),
            "wall_seconds": round(self.wall_seconds, 4),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionStats":
        """Invert :meth:`to_dict` (the ``clou client --stats`` read
        path: per-request stats cross the daemon's process boundary as
        JSON).  Unknown keys are ignored for forward compatibility;
        ``cache_hit_rate`` is derived, never read; ``per_item`` comes
        back empty."""
        if not isinstance(data, dict):
            raise ValueError("SessionStats.from_dict needs a dict")
        version = data.get("v", 1)
        if version != 1:
            raise ValueError(f"unsupported SessionStats schema v{version}")
        stats = cls()
        for key in ("jobs", "items", "cache_hits", "cache_misses",
                    "cache_corrupt",
                    "retries", "timeouts", "crashes", "errors", "resumed",
                    "memory_killed", "budget_exhausted", "candidates",
                    "pruned", "skipped", "undecided", "sat_queries",
                    "sat_memo_hits", "sat_encodes", "sat_learned",
                    "sat_deleted", "sat_propagations"):
            if key in data:
                setattr(stats, key, int(data[key]))
        for key in ("work_seconds", "wall_seconds"):
            if key in data:
                setattr(stats, key, float(data[key]))
        return stats

    def summary(self) -> str:
        """The ``--stats`` line."""
        probed = self.cache_hits + self.cache_misses
        if probed:
            cache = (f"cache {self.cache_hits} hits / "
                     f"{self.cache_misses} misses "
                     f"({100.0 * self.cache_hit_rate:.1f}% hit rate)")
            if self.cache_corrupt:
                cache += f", {self.cache_corrupt} corrupt quarantined"
        else:
            cache = "cache off"
        return (
            f"stats: {self.items} items, jobs={self.jobs} | {cache} | "
            f"retries={self.retries} timeouts={self.timeouts} "
            f"crashes={self.crashes} errors={self.errors} | "
            f"resumed={self.resumed} memory_killed={self.memory_killed} "
            f"budget_exhausted={self.budget_exhausted} | "
            f"candidates={self.candidates} pruned={self.pruned} "
            f"skipped={self.skipped} undecided={self.undecided} | "
            f"sat {self.sat_queries} queries / {self.sat_memo_hits} memo "
            f"hits, {self.sat_encodes} encodes, "
            f"{self.sat_learned} learned (-{self.sat_deleted}) | "
            f"work {self.work_seconds:.2f}s, wall {self.wall_seconds:.2f}s"
        )
