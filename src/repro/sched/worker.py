"""Work-item execution: what actually runs inside a scheduler slot.

A work item is a plain picklable dict (``kind``, ``source``, ``name``,
``function``, ``engine``, serialized ``config``, secrecy policy,
``strategy``).  :func:`execute_item` dispatches on ``kind`` and returns
a picklable result (:class:`FunctionReport`, :class:`RepairResult`, or
:class:`LintReport`).

Two process-local memo caches make the pipeline incremental within a
worker (and within the serial in-process path, where they implement the
one-S-AEG-per-function sharing across engines):

- the **module cache** — ``compile_c`` output keyed by source digest, so
  the translation unit is compiled once per process, not once per
  (function, engine) item;
- the **S-AEG cache** — ``build_acfg`` + :class:`SAEG` keyed by (source
  digest, function).  Both detection engines read the same S-AEG; the
  engines never mutate it (``ClouSTL`` keeps its bypass table on the
  engine object), so sharing is report-preserving.  Repair is *not*
  routed through this cache: fence insertion mutates the A-CFG function
  in place, so each repair item builds a private copy.

Caches are bounded LRU; entries are keyed by content, so sharing them
across sessions in one process is behaviour-preserving.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.clou.acfg import build_acfg
from repro.clou.aeg import SAEG
from repro.clou.engine import CLOU_DEFAULT_CONFIG, ClouConfig, ENGINES
from repro.clou.repair import RepairResult, repair
from repro.clou.report import FunctionReport
from repro.errors import AnalysisError, ReproError
from repro.sched.cache import source_digest

_MODULE_CACHE_SIZE = 8
_SAEG_CACHE_SIZE = 64

_module_cache: "OrderedDict[str, object]" = OrderedDict()
_saeg_cache: "OrderedDict[tuple[str, str], SAEG]" = OrderedDict()
_saeg_stats = {"hits": 0, "misses": 0}


def clear_caches() -> None:
    _module_cache.clear()
    _saeg_cache.clear()
    _saeg_stats["hits"] = _saeg_stats["misses"] = 0


def saeg_cache_info() -> dict[str, int]:
    """Hit/miss counters for the per-process S-AEG cache (used by tests
    to prove the cross-engine sharing actually happens)."""
    return dict(_saeg_stats, size=len(_saeg_cache))


def _cached(cache: OrderedDict, size: int, key, build):
    try:
        cache.move_to_end(key)
        return cache[key]
    except KeyError:
        pass
    value = build()
    cache[key] = value
    while len(cache) > size:
        cache.popitem(last=False)
    return value


def module_for(source: str, name: str = ""):
    """The compiled module for ``source`` (process-local memo)."""
    from repro.minic import compile_c

    key = source_digest(source) + "\x00" + name
    return _cached(_module_cache, _MODULE_CACHE_SIZE, key,
                   lambda: compile_c(source, name=name))


def saeg_for(source: str, name: str, function: str) -> SAEG:
    """One shared S-AEG per (source, function) — both engines read it."""
    key = (source_digest(source) + "\x00" + name, function)
    if key in _saeg_cache:
        _saeg_stats["hits"] += 1
    else:
        _saeg_stats["misses"] += 1
    module = module_for(source, name)
    return _cached(
        _saeg_cache, _SAEG_CACHE_SIZE, key,
        lambda: SAEG(build_acfg(module, function).function))


def analyze_item(source: str, name: str, function: str, engine: str,
                 config: ClouConfig, *, resume: dict | None = None,
                 checkpoint=None) -> FunctionReport:
    """One (function, engine) detection run; errors become report
    fields, mirroring the historical ``analyze_function`` contract.
    ``resume``/``checkpoint`` thread the scheduler's partial-progress
    protocol into :meth:`DetectionEngine.run`."""
    if engine not in ENGINES:
        raise AnalysisError(f"unknown engine {engine!r}; choose from "
                            f"{sorted(ENGINES)}")
    try:
        aeg = saeg_for(source, name, function)
        return ENGINES[engine](aeg, config).run(resume=resume,
                                                checkpoint=checkpoint)
    except ReproError as error:
        return FunctionReport(function=function, engine=engine,
                              error=str(error))


def analyze_module_item(module, function: str, engine: str,
                        config: ClouConfig) -> FunctionReport:
    """One (function, engine) run over a pre-compiled module — the
    in-process arm of :meth:`ClouSession.run` for
    :meth:`AnalysisRequest.for_module` requests (no memo: the module
    object is caller-owned and has no content key)."""
    try:
        aeg = SAEG(build_acfg(module, function).function)
        return ENGINES[engine](aeg, config).run()
    except ReproError as error:
        return FunctionReport(function=function, engine=engine,
                              error=str(error))


def repair_item(source: str, name: str, function: str, engine: str,
                config: ClouConfig, strategy: str) -> RepairResult:
    if engine not in ENGINES:
        raise AnalysisError(f"unknown engine {engine!r}; choose from "
                            f"{sorted(ENGINES)}")
    module = module_for(source, name)
    try:
        acfg = build_acfg(module, function)  # private copy: repair mutates
        return repair(acfg.function, engine, config, strategy=strategy)
    except ReproError as error:
        return RepairResult(function=function, engine=engine, fences=[],
                            before=None, after=None, error=str(error))


def lint_item(source: str, name: str, secrets: tuple[str, ...],
              public: tuple[str, ...]):
    from repro.analysis import lint_module

    module = module_for(source, name)
    return lint_module(module, secrets=secrets, public=public)


def report_from_checkpoint(payload: dict, partial: dict,
                           error: str) -> FunctionReport | None:
    """Salvage a partial :class:`FunctionReport` from the last
    checkpoint of a permanently-failed analyze item.  The unexamined
    suffix counts as skipped, so the verdict degrades to ``unknown``
    (never to ``safe``) and the report is barred from the clean-results
    cache."""
    if payload.get("kind") != "analyze" or not partial:
        return None
    from repro.clou.serialize import witness_from_dict

    total = partial.get("total", 0)
    cursor = partial.get("cursor", 0)
    report = FunctionReport(
        function=payload["function"],
        engine=payload["engine"],
        witnesses=[witness_from_dict(w)
                   for w in partial.get("witnesses", [])],
        timed_out=True,
        error=error,
        candidates=partial.get("candidates", 0),
        pruned=partial.get("pruned", 0),
        undecided=partial.get("undecided", 0),
        skipped=partial.get("skipped", 0) + max(0, total - cursor),
    )
    return report


def execute_item(payload: dict, *, resume: dict | None = None,
                 checkpoint=None):
    """Scheduler entry point: dispatch one work-item dict.

    Must stay a module-level function so it pickles under spawn-style
    ``multiprocessing`` start methods.
    """
    import time
    from dataclasses import replace as dc_replace

    from repro.sched.faults import activate, fault_point

    kind = payload["kind"]
    source = payload["source"]
    name = payload.get("name", "")
    config = ClouConfig.from_dict(payload["config"]) \
        if payload.get("config") is not None else CLOU_DEFAULT_CONFIG
    deadline = payload.get("deadline")
    if deadline is not None and kind in ("analyze", "repair"):
        # Clamp the engine's cooperative budget to the caller's
        # remaining wall-clock allowance.  This happens worker-side,
        # *after* cache keys were derived from the request config, so a
        # deadline can never change a cache address or the request
        # config echoed into reports.
        remaining = max(0.1, float(deadline) - time.time())
        budget = config.timeout_seconds
        if budget is None or remaining < budget:
            config = dc_replace(config, timeout_seconds=remaining)
    with activate(getattr(config, "fault_spec", None)):
        fault_point("worker.item")
        if kind == "analyze":
            return analyze_item(source, name, payload["function"],
                                payload["engine"], config,
                                resume=resume, checkpoint=checkpoint)
        if kind == "repair":
            return repair_item(source, name, payload["function"],
                               payload["engine"], config,
                               payload.get("strategy", "lfence"))
        if kind == "lint":
            return lint_item(source, name,
                             tuple(payload.get("secrets", ())),
                             tuple(payload.get("public", ())))
    raise AnalysisError(f"unknown work-item kind {kind!r}")


# Opt in to the scheduler's checkpoint/resume + heartbeat protocol.
execute_item.supports_checkpoints = True
