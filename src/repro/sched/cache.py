"""Content-addressed on-disk result cache for analysis work items.

A cache entry is keyed by the SHA-256 of a canonical JSON description of
the work: ``(schema version, kind, source hash, function, engine,
canonical ClouConfig, secrecy policy)``.  Anything that can change the
result is in the key, so entries never need invalidation — a config or
source edit simply misses.  Values are JSON (the serialized
:class:`FunctionReport` / :class:`LintReport`), written atomically via
``os.replace`` so concurrent runs can share a cache directory.

Only *clean* results are cached: errored, crashed, or timed-out items
are always re-run (a transient failure must not stick).

Fleet hygiene (multiple daemons mounting one shared cache directory):

- **self-healing reads** — a corrupt or schema-mismatched entry found
  by :meth:`ResultCache.get` is quarantined (best-effort unlink) on
  detection instead of being left on disk to re-miss forever; the
  ``corrupt`` counter surfaces through ``SessionStats`` / ``--stats``;
- **bounded size** — :meth:`ResultCache.gc` (the ``clou cache gc``
  command) prunes least-recently-*written* entries (mtime LRU; reads
  do not touch mtimes) until the directory fits a byte budget, so a
  fleet-shared mount cannot grow without bound.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

# Bump when the serialized report schema or the analysis itself changes
# incompatibly; old entries then miss instead of deserializing garbage.
# v2: analyze items are keyed by the function-granular normalized
# digest (repro.sched.digest) instead of the whole-module digest.
SCHEMA_VERSION = 2

from repro.sched.env import CACHE_DIR_ENV, env_cache_dir  # noqa: F401


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def item_cache_key(*, kind: str, source: str = "", source_key: str = "",
                   function: str = "", engine: str = "",
                   config_key: str = "",
                   secrets: tuple[str, ...] = (),
                   public: tuple[str, ...] = ()) -> str:
    """The content address of one work item's result.

    ``source_key`` names the source-content component of the key
    directly — the session passes the *function-granular* digest from
    :mod:`repro.sched.digest`, so an edit elsewhere in the module does
    not move this item's address.  When empty (lint items, or sources
    the splitter cannot tokenize) it falls back to the module-level
    digest of ``source``.
    """
    payload = json.dumps(
        {
            "v": SCHEMA_VERSION,
            "kind": kind,
            "source": source_key or source_digest(source),
            "function": function,
            "engine": engine,
            "config": config_key,
            "secrets": sorted(secrets),
            "public": sorted(public),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def default_cache_dir() -> str | None:
    """``$REPRO_CACHE_DIR`` when set, else ``None`` (caching off for
    library use; the CLI and daemon supply a user-cache default).
    Delegates to :func:`repro.sched.env.env_cache_dir`."""
    return env_cache_dir()


def user_cache_dir() -> str:
    """The CLI's default cache location."""
    base = os.environ.get("XDG_CACHE_HOME", "").strip() or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-clou")


class ResultCache:
    """A directory of ``<key[:2]>/<key>.json`` entries."""

    def __init__(self, root: str):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def quarantine(self, key: str) -> None:
        """Best-effort removal of a corrupt entry, so the next run gets
        a clean miss-and-rewrite instead of re-detecting the same
        garbage forever.  Counted in :attr:`corrupt` (surfaced through
        ``SessionStats`` / ``--stats``)."""
        self.corrupt += 1
        try:
            os.unlink(self._path(key))
        except OSError:
            pass

    def get(self, key: str) -> dict | None:
        """The cached payload, or ``None``.  A *missing* entry is a
        plain miss; a *present but undecodable or schema-mismatched*
        entry is quarantined (deleted best-effort) and then misses —
        on a fleet-shared cache mount one torn write must not become a
        permanent re-parse tax for every daemon."""
        try:
            with open(self._path(key), encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            self.quarantine(key)
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("v") != SCHEMA_VERSION:
            self.quarantine(key)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Atomically write ``payload`` (plus the schema version).  Cache
        writes are best-effort: a read-only or full disk never fails the
        analysis."""
        payload = dict(payload, v=SCHEMA_VERSION)
        path = self._path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass

    def entries(self) -> list[tuple[str, float, int]]:
        """Every entry as ``(path, mtime, size)``.  Unstatable files
        (racing deletion by another daemon's gc) are skipped."""
        found: list[tuple[str, float, int]] = []
        try:
            shards = os.listdir(self.root)
        except OSError:
            return found
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            try:
                names = os.listdir(shard_dir)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    info = os.stat(path)
                except OSError:
                    continue
                found.append((path, info.st_mtime, info.st_size))
        return found

    def gc(self, max_bytes: int) -> tuple[int, int]:
        """Prune the cache down to ``max_bytes``: drop abandoned
        ``.tmp`` files (a writer that died mid-``put``), then evict
        least-recently-*written* entries (mtime LRU — reads never touch
        mtimes, so eviction order is write order) until the remainder
        fits.  Returns ``(entries removed, bytes remaining)``.  All
        removals are best-effort: concurrent gc runs on a shared mount
        race benignly."""
        removed = 0
        try:
            shards = os.listdir(self.root)
        except OSError:
            return (0, 0)
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            try:
                names = os.listdir(shard_dir)
            except OSError:
                continue
            for name in names:
                if name.endswith(".tmp"):
                    try:
                        os.unlink(os.path.join(shard_dir, name))
                    except OSError:
                        pass
        found = sorted(self.entries(), key=lambda entry: (entry[1], entry[0]))
        total = sum(size for _, _, size in found)
        for path, _, size in found:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
        return (removed, total)

    def __len__(self) -> int:
        count = 0
        try:
            shards = os.listdir(self.root)
        except OSError:
            return 0
        for shard in shards:
            try:
                count += sum(
                    name.endswith(".json")
                    for name in os.listdir(os.path.join(self.root, shard))
                )
            except OSError:
                continue
        return count
