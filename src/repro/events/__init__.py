"""Events, event structures, and candidate executions."""

from repro.events.event import (
    AccessKind,
    Bottom,
    Branch,
    Event,
    Fence,
    Location,
    MemoryEvent,
    Read,
    Top,
    Write,
    make_bottom,
    make_top,
)
from repro.events.execution import CandidateExecution, ExecutionWitness, XWitness
from repro.events.structure import EventStructure

__all__ = [
    "AccessKind",
    "Bottom",
    "Branch",
    "CandidateExecution",
    "Event",
    "EventStructure",
    "ExecutionWitness",
    "Fence",
    "Location",
    "MemoryEvent",
    "Read",
    "Top",
    "Write",
    "XWitness",
    "make_bottom",
    "make_top",
]
