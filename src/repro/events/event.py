"""Events: the nodes of event structures and candidate executions.

The vocabulary follows §2.1.1 of the paper.  An :class:`Event` is one
dynamic instance of an instruction on a particular control-flow path;
:class:`MemoryEvent` additionally accesses an architectural
:class:`Location`.  The LCM extensions (§3.2) add:

- ``transient`` events — fetched (ordered by ``tfo``) but never committed
  (not ordered by ``po``);
- ``prefetch`` events — issued by hardware prefetchers, never architectural;
- the distinguished ``TOP`` (⊤) initializer and ``BOTTOM`` (⊥) observer
  events, which bracket every candidate execution.

Events compare by identity (``eid``), so the same static instruction can
appear several times in one execution (e.g. its committed and transient
instances).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Location:
    """An architectural memory location.

    ``base`` names the storage (a variable or array); ``offset`` selects an
    element within it.  Two locations are the *same address* iff both fields
    are equal.  Symbolic offsets (e.g. an attacker-controlled index) are
    represented by strings; equal strings denote equal runtime addresses.
    """

    base: str
    offset: int | str = 0

    def __str__(self) -> str:
        if self.offset == 0:
            return self.base
        return f"{self.base}+{self.offset}"


class AccessKind(enum.Enum):
    """How an event touches its xstate element (§3.2.1).

    A cache hit *reads* xstate; a cache miss (and a write, under a
    write-allocate policy) *read-modify-writes* it; a store under a
    no-write-allocate policy *writes* it.
    """

    READ = "R"
    WRITE = "W"
    READ_MODIFY_WRITE = "RW"

    @property
    def reads_xstate(self) -> bool:
        return self in (AccessKind.READ, AccessKind.READ_MODIFY_WRITE)

    @property
    def writes_xstate(self) -> bool:
        return self in (AccessKind.WRITE, AccessKind.READ_MODIFY_WRITE)


_UNIQUE = object()


@dataclass(frozen=True)
class Event:
    """A node of an event structure.

    ``eid`` is unique within a program elaboration and provides identity;
    ``label`` is the human-readable name used when rendering executions
    (e.g. ``"5"`` for a committed event, ``"5S"`` for its transient twin).
    """

    eid: int
    tid: int = 0
    label: str = ""
    transient: bool = False
    prefetch: bool = False

    def __post_init__(self):
        if not self.label:
            object.__setattr__(self, "label", str(self.eid))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.eid == other.eid

    def __hash__(self) -> int:
        return hash(self.eid)

    def __repr__(self) -> str:
        marks = "S" if self.transient else ""
        marks += "P" if self.prefetch else ""
        return f"{type(self).__name__}({self.label}{marks and '·' + marks})"

    @property
    def committed(self) -> bool:
        """Committed events are architectural: neither transient nor prefetch."""
        return not self.transient and not self.prefetch


@dataclass(frozen=True, eq=False, repr=False)
class MemoryEvent(Event):
    """An event that accesses an architectural memory location."""

    loc: Location = field(default_factory=lambda: Location("?"))

    def __repr__(self) -> str:
        tag = "R" if isinstance(self, Read) else "W" if isinstance(self, Write) else "M"
        suffix = "S" if self.transient else ("P" if self.prefetch else "")
        return f"{self.label}:{tag}{suffix} {self.loc}"


@dataclass(frozen=True, eq=False, repr=False)
class Read(MemoryEvent):
    """An architectural load (or a transient/prefetch instance of one)."""


@dataclass(frozen=True, eq=False, repr=False)
class Write(MemoryEvent):
    """An architectural store (or a transient instance of one).

    ``data`` carries the written value when it is statically known; silent
    store detection (§4.2) compares these values.
    """

    data: object = None


@dataclass(frozen=True, eq=False, repr=False)
class Fence(Event):
    """An explicit ordering instruction (e.g. lfence/mfence)."""

    kind: str = "mfence"


@dataclass(frozen=True, eq=False, repr=False)
class Branch(Event):
    """A conditional branch — a control-flow speculation primitive."""


@dataclass(frozen=True, eq=False, repr=False)
class Top(Event):
    """⊤: the set of writes initializing architectural and xstate state.

    ⊤ behaves as the coherence-first write to every location and the
    first write to every xstate element.
    """


@dataclass(frozen=True, eq=False, repr=False)
class Bottom(Read):
    """⊥: one observer access probing final state after the program runs.

    The paper models ⊥ as a *set* of observer accesses; we instantiate one
    ``Bottom`` event per probed xstate element.  The observer does not
    share memory with the program, so architecturally it only ever reads
    from ⊤ (its ``rf`` source is pinned to ⊤ during witness enumeration);
    microarchitecturally it reads the xstate element for its ``loc``.
    """


TOP_EID = -1
BOTTOM_EID_BASE = 1_000_000


def make_top() -> Top:
    return Top(eid=TOP_EID, label="⊤")


def make_bottom(index: int = 0) -> Bottom:
    return Bottom(eid=BOTTOM_EID_BASE + index, label="⊥" if index == 0 else f"⊥{index}")
