"""Event structures: one resolved control-flow path of a program (§2.1.1).

An :class:`EventStructure` fixes a control-flow path (all branches
resolved) and program order; the LCM extension additionally fixes the
*transient fetch order* ``tfo`` (§3.3), which splices bounded windows of
transient events into the committed instruction stream.

The structure also carries the syntactic dependency relations ``addr``,
``data`` and ``ctrl`` (§2.1.3), and the distinguished ⊤/⊥ events (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.events.event import (
    Bottom,
    Branch,
    Event,
    Fence,
    Location,
    MemoryEvent,
    Read,
    Top,
    Write,
)
from repro.relations import Relation


@dataclass(frozen=True)
class EventStructure:
    """A resolved control-flow path, with speculative extensions.

    Invariants (checked by :meth:`validate`):

    - ``po`` is a strict order on committed events per thread;
    - ``po`` is a subset of ``tfo``;
    - transient events appear in ``tfo`` but never in ``po``;
    - dependency relations only relate events ordered by ``tfo``.
    """

    events: tuple[Event, ...]
    po: Relation
    tfo: Relation
    addr: Relation = field(default_factory=Relation)
    data: Relation = field(default_factory=Relation)
    ctrl: Relation = field(default_factory=Relation)
    top: Top | None = None
    bottoms: tuple[Bottom, ...] = ()
    name: str = ""
    branch_constraints: tuple[tuple[Event, Event, bool], ...] = ()
    """Value constraints from resolved branches: ``(branch, read,
    expects_zero)`` — on this path, the branch's condition was the value
    returned by ``read`` and the path is only consistent with executions
    where that value is (non)zero.  Populated by elaboration when the
    condition is a direct (unmodified) load; used to filter candidate
    executions (litmus convention: initial memory is zero)."""

    # ------------------------------------------------------------------
    # Event views
    # ------------------------------------------------------------------

    @cached_property
    def memory_events(self) -> tuple[MemoryEvent, ...]:
        return tuple(e for e in self.events if isinstance(e, MemoryEvent))

    @cached_property
    def reads(self) -> tuple[Read, ...]:
        return tuple(e for e in self.events if isinstance(e, Read))

    @cached_property
    def writes(self) -> tuple[Write, ...]:
        return tuple(e for e in self.events if isinstance(e, Write))

    @cached_property
    def branches(self) -> tuple[Branch, ...]:
        return tuple(e for e in self.events if isinstance(e, Branch))

    @cached_property
    def fences(self) -> tuple[Fence, ...]:
        return tuple(e for e in self.events if isinstance(e, Fence))

    @cached_property
    def committed_events(self) -> tuple[Event, ...]:
        return tuple(e for e in self.events if e.committed)

    @cached_property
    def transient_events(self) -> tuple[Event, ...]:
        return tuple(e for e in self.events if e.transient)

    @cached_property
    def prefetch_events(self) -> tuple[Event, ...]:
        return tuple(e for e in self.events if e.prefetch)

    @cached_property
    def locations(self) -> frozenset[Location]:
        return frozenset(e.loc for e in self.memory_events)

    def committed_memory_events(self) -> tuple[MemoryEvent, ...]:
        return tuple(e for e in self.memory_events if e.committed)

    def events_at(self, loc: Location) -> tuple[MemoryEvent, ...]:
        return tuple(e for e in self.memory_events if e.loc == loc)

    def writes_at(self, loc: Location) -> tuple[Write, ...]:
        return tuple(w for w in self.writes if w.loc == loc)

    def reads_at(self, loc: Location) -> tuple[Read, ...]:
        return tuple(r for r in self.reads if r.loc == loc)

    # ------------------------------------------------------------------
    # Derived relations
    # ------------------------------------------------------------------

    @cached_property
    def po_loc(self) -> Relation:
        """Subset of po relating same-address memory events."""
        return self.po.filter(
            lambda a, b: isinstance(a, MemoryEvent)
            and isinstance(b, MemoryEvent)
            and a.loc == b.loc
        )

    @cached_property
    def tfo_loc(self) -> Relation:
        """Subset of tfo relating same-address memory events (§4.2)."""
        return self.tfo.filter(
            lambda a, b: isinstance(a, MemoryEvent)
            and isinstance(b, MemoryEvent)
            and a.loc == b.loc
        )

    @cached_property
    def dep(self) -> Relation:
        """dep = addr + data + ctrl (§2.1.3)."""
        return self.addr | self.data | self.ctrl

    @cached_property
    def fence_order(self) -> Relation:
        """Pairs ordered by an intervening fence event (the ``fence`` relation)."""
        pairs = []
        for fence in self.fences:
            before = self.po.predecessors(fence)
            after = self.po.successors(fence)
            pairs.extend((a, b) for a in before for b in after)
        return Relation(pairs)

    def tfo_interval(self, first: Event, last: Event) -> tuple[Event, ...]:
        """Events strictly between ``first`` and ``last`` in tfo order."""
        after_first = self.tfo.successors(first)
        before_last = self.tfo.predecessors(last)
        middle = after_first & before_last
        return tuple(e for e in self.events if e in middle)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` if structural invariants are violated."""
        ids = [e.eid for e in self.events]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate event ids in event structure")
        if not self.po.is_acyclic():
            raise ValueError("po has a cycle")
        if not self.tfo.is_acyclic():
            raise ValueError("tfo has a cycle")
        if not self.po.is_subset_of(self.tfo):
            missing = self.po - self.tfo
            raise ValueError(f"po must be a subset of tfo; missing {set(missing)!r}")
        transient = set(self.transient_events) | set(self.prefetch_events)
        for a, b in self.po:
            if a in transient or b in transient:
                raise ValueError(f"po relates non-committed event: {a!r} -> {b!r}")

    def with_name(self, name: str) -> "EventStructure":
        return EventStructure(
            events=self.events,
            po=self.po,
            tfo=self.tfo,
            addr=self.addr,
            data=self.data,
            ctrl=self.ctrl,
            top=self.top,
            bottoms=self.bottoms,
            name=name,
        )

    def __repr__(self) -> str:
        kind_counts = (
            f"{len(self.reads)}R/{len(self.writes)}W/"
            f"{len(self.transient_events)}S"
        )
        return f"<EventStructure {self.name or '?'}: {len(self.events)} events ({kind_counts})>"
