"""Execution witnesses and candidate executions (§2.1.2, §3.2).

An :class:`ExecutionWitness` instantiates the architectural communication
relations ``rf``/``co`` for an event structure (``fr`` is derived).  An
:class:`XWitness` instantiates the microarchitectural analogues ``rfx``/
``cox`` over xstate accesses (``frx`` is derived).  A
:class:`CandidateExecution` bundles a structure with both witnesses.

⊤ is treated as the coherence-first write of every location and xstate
element, so reads-from-initial-state is an ordinary ``rf``/``rfx`` edge
from ⊤ rather than an implicit convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.events.event import (
    AccessKind,
    Bottom,
    Event,
    MemoryEvent,
    Read,
    Top,
    Write,
)
from repro.events.structure import EventStructure
from repro.relations import Relation


def _same_location(a: Event, b: Event, top: Top | None) -> bool:
    """⊤ matches every location; otherwise compare MemoryEvent locations."""
    if top is not None and (a == top or b == top):
        return True
    return (
        isinstance(a, MemoryEvent)
        and isinstance(b, MemoryEvent)
        and a.loc == b.loc
    )


@dataclass(frozen=True)
class ExecutionWitness:
    """The architectural communication choices: rf and co (§2.1.2).

    - ``rf`` maps each Write (or ⊤) to the Reads it sources; every read has
      exactly one source.
    - ``co`` is, per location, a strict total order on Writes with ⊤ first.
    """

    rf: Relation
    co: Relation

    def fr_for(self, structure: EventStructure) -> Relation:
        """fr = ~rf.co restricted to same-location pairs (§2.1.2).

        A read from ⊤ is fr-before every write to its location.
        """
        top = structure.top
        pairs = []
        for source, read in self.rf:
            if not isinstance(read, Read) or isinstance(read, Bottom):
                continue
            if top is not None and source == top:
                successors = set(structure.writes_at(read.loc))
            else:
                successors = {
                    w
                    for w in self.co.successors(source)
                    if isinstance(w, Write) and w.loc == read.loc
                }
            pairs.extend((read, w) for w in successors if w != read)
        return Relation(pairs, "fr")


@dataclass(frozen=True)
class XWitness:
    """The microarchitectural communication choices (§3.2.2).

    - ``xmap`` assigns each event the xstate element it accesses (None for
      events that do not touch xstate);
    - ``kinds`` records *how* each event accesses its element (§3.2.1);
    - ``rfx`` maps xstate writers to the xstate readers they source;
    - ``cox`` is, per element, a strict total order on xstate writers.
    """

    xmap: dict[Event, object]
    kinds: dict[Event, AccessKind]
    rfx: Relation
    cox: Relation

    def element_of(self, event: Event) -> object:
        return self.xmap.get(event)

    def kind_of(self, event: Event) -> AccessKind | None:
        return self.kinds.get(event)

    def reads_xstate(self, event: Event) -> bool:
        kind = self.kinds.get(event)
        return kind is not None and kind.reads_xstate

    def writes_xstate(self, event: Event) -> bool:
        kind = self.kinds.get(event)
        return kind is not None and kind.writes_xstate

    def frx(self, top: Top | None) -> Relation:
        """frx = ~rfx.cox per xstate element (reads-before, §4.2)."""
        pairs = []
        same_element_writers: dict[object, list[Event]] = {}
        for event, element in self.xmap.items():
            if element is not None and self.writes_xstate(event):
                same_element_writers.setdefault(element, []).append(event)
        for source, reader in self.rfx:
            element = self.xmap.get(reader)
            if element is None:
                continue
            if top is not None and source == top:
                successors = set(same_element_writers.get(element, ()))
            else:
                successors = {
                    w
                    for w in self.cox.successors(source)
                    if self.xmap.get(w) == element
                }
            pairs.extend((reader, w) for w in successors if w != reader)
        return Relation(pairs, "frx")


@dataclass(frozen=True)
class CandidateExecution:
    """An event structure completed with architectural and (optionally)
    microarchitectural witnesses — one node of the LCM semantics."""

    structure: EventStructure
    witness: ExecutionWitness
    xwitness: XWitness | None = None

    # -- architectural relations ---------------------------------------

    @property
    def rf(self) -> Relation:
        return self.witness.rf

    @property
    def co(self) -> Relation:
        return self.witness.co

    @cached_property
    def fr(self) -> Relation:
        return self.witness.fr_for(self.structure)

    @cached_property
    def com(self) -> Relation:
        return self.rf | self.co | self.fr

    @cached_property
    def rfi(self) -> Relation:
        """rf-internal: source and sink on the same thread (⊤ counts as
        every thread, matching the single-core focus of §4.1)."""
        top = self.structure.top
        return self.rf.filter(lambda w, r: w == top or w.tid == r.tid)

    @cached_property
    def rfe(self) -> Relation:
        top = self.structure.top
        return self.rf.filter(lambda w, r: w != top and w.tid != r.tid)

    # -- microarchitectural relations ----------------------------------

    @property
    def rfx(self) -> Relation:
        self._require_xwitness()
        return self.xwitness.rfx

    @property
    def cox(self) -> Relation:
        self._require_xwitness()
        return self.xwitness.cox

    @cached_property
    def frx(self) -> Relation:
        self._require_xwitness()
        return self.xwitness.frx(self.structure.top)

    @cached_property
    def comx(self) -> Relation:
        return self.rfx | self.cox | self.frx

    def _require_xwitness(self) -> None:
        if self.xwitness is None:
            raise ValueError(
                "this candidate execution has no microarchitectural witness; "
                "extend it with repro.lcm.microarch first"
            )

    # -- rendering ------------------------------------------------------

    def describe(self) -> str:
        """A deterministic multi-line rendering used in docs and goldens."""
        lines = [f"candidate execution of {self.structure.name or '<anonymous>'}:"]
        for event in self.structure.events:
            annot = ""
            if self.xwitness is not None:
                element = self.xwitness.element_of(event)
                kind = self.xwitness.kind_of(event)
                if element is not None and kind is not None:
                    annot = f" ({kind.value} {element})"
            lines.append(f"  {event!r}{annot}")
        for label, rel in self.relations().items():
            if rel:
                rendered = sorted(f"{a.label}->{b.label}" for a, b in rel)
                lines.append(f"  {label}: {', '.join(rendered)}")
        return "\n".join(lines)

    def relations(self) -> dict[str, Relation]:
        rels = {
            "po": self.structure.po.immediate(),
            "tfo": self.structure.tfo.immediate(),
            "addr": self.structure.addr,
            "data": self.structure.data,
            "ctrl": self.structure.ctrl,
            "rf": self.rf,
            "co": self.co,
            "fr": self.fr,
        }
        if self.xwitness is not None:
            rels.update({"rfx": self.rfx, "cox": self.cox, "frx": self.frx})
        return rels

    def with_xwitness(self, xwitness: XWitness) -> "CandidateExecution":
        return CandidateExecution(self.structure, self.witness, xwitness)


def initial_reads(structure: EventStructure) -> Relation:
    """The rf edges pinned by convention: every ⊥ reads from ⊤."""
    top = structure.top
    if top is None:
        return Relation()
    return Relation((top, b) for b in structure.bottoms)
