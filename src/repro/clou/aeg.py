"""The Symbolic Abstract Event Graph (S-AEG, §5.2).

An S-AEG over-approximates every candidate execution of an A-CFG
function.  Nodes are the A-CFG's instructions; the symbolic edge classes
of the paper map onto:

- control flow (po/tfo): the block DAG plus per-block path-condition
  variables (encoded for the SAT realizability check, Fig. 7);
- dep (addr/addr_gep/data/ctrl): register dataflow, extended through
  memory with ``(data.rf)*`` chains (§5.3);
- com (rf): store→load pairs under the alias analysis of §5.2;
- comx: left unconstrained except by fetch order (§5.2), which is what
  the leakage engines' window/ROB bounds realize.

Taint (attacker control, §5.3) is computed here as well: all top-level
function inputs and all non-pointer data in memory are attacker-
controlled; pointers loaded from memory are architecturally trusted
(the basis of the ``addr_gep`` filter).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.clou.alias import AliasAnalysis
from repro.ir import (
    Alloca,
    Argument,
    BinOp,
    Branch,
    Call,
    Cast,
    FenceInstr,
    Function,
    GetElementPtr,
    ICmp,
    Instruction,
    IntType,
    Load,
    PointerType,
    Store,
    Temp,
    Value,
)

_fault_point_impl = None


def _fault_point(site: str) -> str | None:
    """repro.sched.faults.fault_point, bound lazily: importing it at
    module scope would cycle (sched → session → engine → aeg)."""
    global _fault_point_impl
    if _fault_point_impl is None:
        from repro.sched.faults import fault_point
        _fault_point_impl = fault_point
    return _fault_point_impl(site)


@dataclass(frozen=True)
class Dep:
    """A dependency chain head: the load whose result flows here.

    ``via_gep_index`` marks chains that pass through a getelementptr
    *index* operand (the addr_gep class, §5.2); ``store_hops`` counts the
    (data.rf) memory hops the chain took (§6.2.1 restriction 2 bounds
    this).
    """

    source: int  # node id of the originating Load
    via_gep_index: bool = False
    store_hops: int = 0


@dataclass(eq=False)  # identity equality/hash: nodes are unique instances
class AEGNode:
    nid: int
    instruction: Instruction
    block: str
    index: int      # instruction index within the block
    position: int   # global topological position

    @property
    def is_memory(self) -> bool:
        return isinstance(self.instruction, (Load, Store, Call))

    @property
    def is_load(self) -> bool:
        return isinstance(self.instruction, Load)

    @property
    def is_store(self) -> bool:
        return isinstance(self.instruction, Store)

    @property
    def is_branch(self) -> bool:
        return isinstance(self.instruction, Branch)

    @property
    def is_fence(self) -> bool:
        return isinstance(self.instruction, FenceInstr)

    def describe(self) -> str:
        return f"[{self.block}#{self.index}] {self.instruction}"


class SAEG:
    """The S-AEG of one A-CFG function."""

    def __init__(self, function: Function, alias: AliasAnalysis | None = None,
                 rf_window: int = 500, max_deps_per_temp: int = 32):
        self.function = function
        self.alias = alias or AliasAnalysis(function)
        self.nodes: list[AEGNode] = []
        self.by_block: dict[str, list[AEGNode]] = {}
        self._block_order: list[str] = []
        self._block_position: dict[str, int] = {}
        self._reach_mask: dict[str, int] = {}
        self._block_bit: dict[str, int] = {}
        self._successors: dict[str, list[str]] = {}
        self.rf_window = rf_window
        self.max_deps_per_temp = max_deps_per_temp
        self._build_nodes()
        self._build_reachability()
        self._build_node_graph()
        self.deps: dict[str, tuple[Dep, ...]] = {}
        self.taint: dict[str, bool] = {}
        self._def_node: dict[str, AEGNode] = {}
        self._build_dataflow()
        self.rf: list[tuple[AEGNode, AEGNode]] = []
        self._build_rf()
        self._extend_through_memory()
        self._path_oracle: "PathOracle | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _topological_blocks(self) -> list[str]:
        order: list[str] = []
        indegree: dict[str, int] = {b.label: 0 for b in self.function.blocks}
        successors: dict[str, list[str]] = {}
        for block in self.function.blocks:
            successors[block.label] = block.successors()
            for succ in block.successors():
                indegree[succ] = indegree.get(succ, 0) + 1
        worklist = [b.label for b in self.function.blocks if indegree[b.label] == 0]
        while worklist:
            label = worklist.pop()
            order.append(label)
            for succ in successors.get(label, ()):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    worklist.append(succ)
        self._successors = successors
        return order

    def _build_nodes(self) -> None:
        order = self._topological_blocks()
        self._block_order = order
        self._block_position = {label: i for i, label in enumerate(order)}
        position = 0
        nid = 0
        blocks_by_label = {b.label: b for b in self.function.blocks}
        for label in order:
            block = blocks_by_label[label]
            block_nodes = []
            for index, ins in enumerate(block.instructions):
                node = AEGNode(nid=nid, instruction=ins, block=label,
                               index=index, position=position)
                self.nodes.append(node)
                block_nodes.append(node)
                nid += 1
                position += 1
            self.by_block[label] = block_nodes

    def _build_reachability(self) -> None:
        self._block_bit = {
            label: 1 << i for i, label in enumerate(self._block_order)
        }
        for label in reversed(self._block_order):
            mask = self._block_bit[label]
            for succ in self._successors.get(label, ()):
                mask |= self._reach_mask[succ]
            self._reach_mask[label] = mask

    def _build_node_graph(self) -> None:
        """Instruction-level predecessor lists, for windowed reverse BFS."""
        self._node_preds: list[list[int]] = [[] for _ in self.nodes]
        last_of_block: dict[str, int] = {
            label: nodes[-1].nid
            for label, nodes in self.by_block.items() if nodes
        }
        for label, nodes in self.by_block.items():
            for previous, node in zip(nodes, nodes[1:]):
                self._node_preds[node.nid].append(previous.nid)
        for label in self._block_order:
            for succ in self._successors.get(label, ()):
                succ_nodes = self.by_block.get(succ, [])
                if succ_nodes and label in last_of_block:
                    self._node_preds[succ_nodes[0].nid].append(
                        last_of_block[label]
                    )

    def window(self, anchor: AEGNode, bound: int) -> "WindowView":
        """Reverse BFS from ``anchor``: for every node within ``bound``
        fetched instructions, the minimal distance to the anchor and
        whether an lfence-free path to the anchor exists.  This realizes
        the §6.2.1 sliding window: one O(bound) pass per anchor, O(1)
        queries afterwards."""
        distances: dict[int, int] = {}
        clear: set[int] = set()
        frontier = [(anchor.nid, -1, True)]
        # Each entry: (node, #instructions strictly between node and
        # anchor, fence-free-so-far).
        while frontier:
            next_frontier: list[tuple[int, int, bool]] = []
            for nid, distance, fence_free in frontier:
                for pred in self._node_preds[nid]:
                    pred_distance = distance + 1
                    if pred_distance > bound:
                        continue
                    pred_node = self.nodes[pred]
                    pred_clear = fence_free and not self.nodes[nid].is_fence \
                        if nid != anchor.nid else True
                    known = distances.get(pred)
                    improves_distance = known is None or pred_distance < known
                    improves_clear = pred_clear and pred not in clear
                    if not improves_distance and not improves_clear:
                        continue
                    if improves_distance:
                        distances[pred] = pred_distance
                    if pred_clear:
                        clear.add(pred)
                    next_frontier.append((pred, pred_distance, pred_clear))
            frontier = next_frontier
        return WindowView(anchor, distances, clear)

    # ------------------------------------------------------------------
    # Ordering and distances
    # ------------------------------------------------------------------

    def block_reaches(self, a: str, b: str) -> bool:
        return bool(self._reach_mask[a] & self._block_bit[b])

    def before(self, a: AEGNode, b: AEGNode) -> bool:
        """a may execute before b on some path (strict)."""
        if a.block == b.block:
            return a.index < b.index
        return a.block != b.block and self.block_reaches(a.block, b.block)

    def co_executable(self, a: AEGNode, b: AEGNode) -> bool:
        return a.block == b.block or self.before(a, b) or self.before(b, a)

    def min_distance(self, a: AEGNode, b: AEGNode) -> int | None:
        """Minimum number of fetched instructions strictly between a and b
        along any path (None if b never follows a)."""
        if not self.before(a, b):
            return None
        if a.block == b.block:
            return b.index - a.index - 1
        suffix = len(self.by_block[a.block]) - a.index - 1
        best = self._min_block_distance(a.block, b.block)
        if best is None:
            return None
        return suffix + best + b.index

    def _min_block_distance(self, src: str, dst: str) -> int | None:
        """Min instructions in strictly-intermediate blocks on src->dst paths."""
        best: dict[str, int | None] = {}
        for label in reversed(self._block_order):
            if label == dst:
                best[label] = 0
                continue
            candidates = [
                best[succ] for succ in self._successors.get(label, ())
                if best.get(succ) is not None
            ]
            if not candidates:
                best[label] = None
                continue
            cost = 0 if label == src else len(self.by_block[label])
            # cost of this block's instructions is paid when passing
            # through it (not for the endpoints).
            if label == src:
                best[label] = min(candidates)
            else:
                best[label] = cost + min(candidates)
        return best.get(src)

    def fence_free_between(self, a: AEGNode, b: AEGNode) -> bool:
        """Is there a path from a to b with no lfence strictly between?"""
        if not self.before(a, b):
            return False
        if a.block == b.block:
            return not any(
                node.is_fence
                for node in self.by_block[a.block][a.index + 1:b.index]
            )
        suffix_clear = not any(
            node.is_fence for node in self.by_block[a.block][a.index + 1:]
        )
        if not suffix_clear:
            return False
        prefix_clear = not any(
            node.is_fence for node in self.by_block[b.block][:b.index]
        )
        if not prefix_clear:
            return False
        # DAG search through fence-free intermediate blocks.
        fenced = {
            label for label, nodes in self.by_block.items()
            if any(node.is_fence for node in nodes)
        }
        target = b.block
        seen = set()
        stack = [a.block]
        while stack:
            label = stack.pop()
            for succ in self._successors.get(label, ()):
                if succ == target:
                    return True
                if succ in seen or succ in fenced:
                    continue
                seen.add(succ)
                stack.append(succ)
        return False

    # ------------------------------------------------------------------
    # Dataflow: deps and taint
    # ------------------------------------------------------------------

    @staticmethod
    def _is_pointer(value: Value) -> bool:
        return isinstance(value.type, PointerType) if hasattr(value, "type") else False

    def _build_dataflow(self) -> None:
        deps = self.deps
        taint = self.taint

        def value_deps(value: Value) -> tuple[Dep, ...]:
            if isinstance(value, Temp):
                return deps.get(value.name, ())
            return ()

        def value_taint(value: Value) -> bool:
            if isinstance(value, Temp):
                return taint.get(value.name, False)
            if isinstance(value, Argument):
                return True  # all top-level inputs are attacker-controlled
            return False

        for node in self.nodes:
            ins = node.instruction
            if ins.result is None:
                continue
            self._def_node[ins.result.name] = node
            name = ins.result.name
            if isinstance(ins, Load):
                deps[name] = (Dep(node.nid),)
                # Non-pointer data in memory is attacker-controlled;
                # loaded pointers are architecturally trusted (§5.3).
                # Stack slots are the exception: their contents are only
                # tainted if a tainted value was stored into them, which
                # the (data.rf) propagation below discovers (this is the
                # taint *tracking* of §5.3 — it is what filters benign
                # loop counters in crypto code).
                provenance = self.alias.value_provenance(ins.pointer)
                taint[name] = (
                    isinstance(ins.result.type, IntType)
                    and provenance.kind != "alloca"
                )
            elif isinstance(ins, (BinOp, ICmp)):
                deps[name] = self._cap(tuple(dict.fromkeys(
                    value_deps(ins.lhs) + value_deps(ins.rhs)
                )))
                taint[name] = value_taint(ins.lhs) or value_taint(ins.rhs)
            elif isinstance(ins, Cast):
                deps[name] = value_deps(ins.value)
                taint[name] = value_taint(ins.value)
            elif isinstance(ins, GetElementPtr):
                collected: list[Dep] = list(value_deps(ins.base))
                for index in ins.indices:
                    collected.extend(
                        Dep(d.source, True, d.store_hops)
                        for d in value_deps(index)
                    )
                deps[name] = self._cap(tuple(dict.fromkeys(collected)))
                taint[name] = any(
                    value_taint(index) for index in ins.indices
                ) or value_taint(ins.base)
            elif isinstance(ins, Call):
                deps[name] = self._cap(tuple(dict.fromkeys(
                    d for arg in ins.args for d in value_deps(arg)
                )))
                taint[name] = True  # havoc result is untrusted
            elif isinstance(ins, Alloca):
                deps[name] = ()
                taint[name] = False

    # ------------------------------------------------------------------
    # rf over memory, and (data.rf)* extension
    # ------------------------------------------------------------------

    def _build_rf(self) -> None:
        """Store→load pairs under the §5.2 alias analysis, restricted to
        the sliding window (positions within ``rf_window``)."""
        stores = [n for n in self.nodes if n.is_store]
        loads = [n for n in self.nodes if n.is_load]
        stores.sort(key=lambda n: n.position)
        import bisect

        positions = [s.position for s in stores]
        for load in loads:
            lo = bisect.bisect_left(positions, load.position - self.rf_window)
            for store in stores[lo:]:
                if store.position >= load.position + self.rf_window:
                    break
                if not self.before(store, load):
                    continue
                if self.alias.may_alias(store.instruction.pointer,
                                        load.instruction.pointer):
                    self.rf.append((store, load))

    def _extend_through_memory(self, max_rounds: int = 4) -> None:
        """(data.rf)* — §5.3: a loaded value can be stored and re-loaded
        any number of times before its use as an address.  Each memory hop
        increments ``store_hops``."""
        for _ in range(max_rounds):
            changed = False
            for store, load in self.rf:
                value = store.instruction.value
                result = load.instruction.result
                if result is None:
                    continue
                if isinstance(value, Argument):
                    # Spilled parameters are attacker-controlled inputs.
                    if not self.taint.get(result.name, False):
                        self.taint[result.name] = True
                        changed = True
                    continue
                if not isinstance(value, Temp):
                    # Constant store: taints nothing, carries no deps.
                    continue
                incoming = self.deps.get(value.name, ())
                existing = dict.fromkeys(self.deps.get(result.name, ()))
                added = False
                for dep in incoming:
                    hopped = Dep(dep.source, dep.via_gep_index,
                                 dep.store_hops + 1)
                    if hopped not in existing:
                        existing[hopped] = None
                        added = True
                if added:
                    self.deps[result.name] = self._cap(tuple(existing))
                    changed = True
                # Taint flows through memory as well.
                if self.taint.get(value.name, False) and not self.taint.get(
                        result.name, False):
                    self.taint[result.name] = True
                    changed = True
            if changed:
                # Re-propagate register dataflow over the new facts.
                self._repropagate_registers()
            else:
                break

    def _repropagate_registers(self) -> None:
        deps = self.deps
        taint = self.taint

        def value_deps(value: Value) -> tuple[Dep, ...]:
            if isinstance(value, Temp):
                return deps.get(value.name, ())
            return ()

        def value_taint(value: Value) -> bool:
            if isinstance(value, Temp):
                return taint.get(value.name, False)
            if isinstance(value, Argument):
                return True
            return False

        for node in self.nodes:
            ins = node.instruction
            if ins.result is None or isinstance(ins, (Load, Alloca)):
                continue
            name = ins.result.name
            if isinstance(ins, (BinOp, ICmp)):
                merged = dict.fromkeys(deps.get(name, ()))
                merged.update(dict.fromkeys(
                    value_deps(ins.lhs) + value_deps(ins.rhs)))
                deps[name] = self._cap(tuple(merged))
                taint[name] = taint.get(name, False) or \
                    value_taint(ins.lhs) or value_taint(ins.rhs)
            elif isinstance(ins, Cast):
                merged = dict.fromkeys(deps.get(name, ()))
                merged.update(dict.fromkeys(value_deps(ins.value)))
                deps[name] = self._cap(tuple(merged))
                taint[name] = taint.get(name, False) or value_taint(ins.value)
            elif isinstance(ins, GetElementPtr):
                merged = dict.fromkeys(deps.get(name, ()))
                merged.update(dict.fromkeys(value_deps(ins.base)))
                for index in ins.indices:
                    merged.update(dict.fromkeys(
                        Dep(d.source, True, d.store_hops)
                        for d in value_deps(index)))
                deps[name] = self._cap(tuple(merged))
                taint[name] = taint.get(name, False) or any(
                    value_taint(i) for i in ins.indices) or value_taint(ins.base)

    # ------------------------------------------------------------------
    # Queries used by the engines
    # ------------------------------------------------------------------

    def node_of(self, nid: int) -> AEGNode:
        return self.nodes[nid]

    def address_deps(self, node: AEGNode) -> tuple[Dep, ...]:
        """Dependency heads flowing into this node's address operand."""
        ins = node.instruction
        pointer: Value | None = None
        if isinstance(ins, Load):
            pointer = ins.pointer
        elif isinstance(ins, Store):
            pointer = ins.pointer
        elif isinstance(ins, Call):
            collected: list[Dep] = []
            for arg in ins.args:
                if isinstance(arg, Temp):
                    collected.extend(self.deps.get(arg.name, ()))
            return tuple(dict.fromkeys(collected))
        if isinstance(pointer, Temp):
            return self.deps.get(pointer.name, ())
        return ()

    def data_deps(self, node: AEGNode) -> tuple[Dep, ...]:
        ins = node.instruction
        if isinstance(ins, Store) and isinstance(ins.value, Temp):
            return self.deps.get(ins.value.name, ())
        return ()

    def branch_cond_deps(self, node: AEGNode) -> tuple[Dep, ...]:
        ins = node.instruction
        if isinstance(ins, Branch) and isinstance(ins.cond, Temp):
            return self.deps.get(ins.cond.name, ())
        return ()

    def value_tainted(self, value: Value) -> bool:
        if isinstance(value, Temp):
            return self.taint.get(value.name, False)
        if isinstance(value, Argument):
            return True
        return False

    def loads(self) -> list[AEGNode]:
        return [n for n in self.nodes if n.is_load]

    def stores(self) -> list[AEGNode]:
        return [n for n in self.nodes if n.is_store]

    def branches(self) -> list[AEGNode]:
        return [n for n in self.nodes if n.is_branch]

    def memory_nodes(self) -> list[AEGNode]:
        return [n for n in self.nodes if n.is_memory]

    @property
    def size(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # SAT realizability (Fig. 7)
    # ------------------------------------------------------------------

    def _cap(self, deps: tuple[Dep, ...]) -> tuple[Dep, ...]:
        if len(deps) > self.max_deps_per_temp:
            return deps[:self.max_deps_per_temp]
        return deps

    def path_constraints(self):
        """Encode architectural path conditions as boolean constraints:
        one variable per block (x_<label> — "block executes"), entry
        forced, branch blocks choose exactly one successor, and a block
        executes iff some predecessor edge into it is taken.

        Returns (encoder, cnf) — callers add query clauses and solve.
        This is the Fig. 7 machinery: edge labels like po[x1] correspond
        to the x_<label> variables here.
        """
        from repro.solver import TseitinEncoder, conj, disj, exactly_one, iff, var

        encoder = TseitinEncoder()
        entry = self.function.entry.label
        encoder.assert_expr(var(f"x_{entry}"))
        incoming: dict[str, list] = {}
        for block in self.function.blocks:
            successors = block.successors()
            executed = var(f"x_{block.label}")
            if len(successors) == 2:
                then_edge = var(f"e_{block.label}->{successors[0]}#0")
                else_edge = var(f"e_{block.label}->{successors[1]}#1")
                encoder.assert_expr(iff(executed, disj(then_edge, else_edge)))
                encoder.assert_expr(
                    executed >> ~conj(then_edge, else_edge)
                )
                incoming.setdefault(successors[0], []).append(then_edge)
                incoming.setdefault(successors[1], []).append(else_edge)
            elif len(successors) == 1:
                edge = var(f"e_{block.label}->{successors[0]}#0")
                encoder.assert_expr(iff(executed, edge))
                incoming.setdefault(successors[0], []).append(edge)
        for block in self.function.blocks:
            if block.label == entry:
                continue
            executed = var(f"x_{block.label}")
            edges = incoming.get(block.label, [])
            if edges:
                encoder.assert_expr(iff(executed, disj(*edges)))
            else:
                encoder.assert_expr(~executed)
        return encoder

    @property
    def path_oracle(self) -> "PathOracle":
        """The per-S-AEG incremental realizability oracle.  Lazily
        constructed (encoding Fig. 7 exactly once) and kept for the
        graph's lifetime, so every realizability query over this
        function shares one solver and its learned clauses."""
        if self._path_oracle is None:
            self._path_oracle = PathOracle(self)
        return self._path_oracle

    def realizable(self, nodes: list[AEGNode]) -> bool:
        """Can all given nodes execute in ONE architectural path?
        Answered by the persistent :class:`PathOracle` as an assumption
        query over the x_<block> literals (Fig. 7)."""
        return self.path_oracle.realizable(nodes)

    def realizable3(self, nodes: list[AEGNode], *,
                    deadline: float | None = None,
                    conflict_budget: int | None = None):
        """Three-valued :meth:`realizable`: True / False / UNKNOWN, where
        UNKNOWN means the budgeted solve gave up without deciding."""
        return self.path_oracle.realizable3(
            nodes, deadline=deadline, conflict_budget=conflict_budget)

    def realizable_fresh(self, nodes: list[AEGNode]) -> bool:
        """Reference implementation of :meth:`realizable`: re-encode the
        path constraints and build a throwaway solver for this single
        query.  Kept for differential testing (the incremental-vs-fresh
        fuzz oracle) and the bench_solver ablation; engines use the
        oracle path."""
        from repro.solver import SatSolver, var

        encoder = self.path_constraints()
        for node in nodes:
            encoder.assert_expr(var(f"x_{node.block}"))
        solver = SatSolver.from_cnf(encoder.cnf)
        return solver.solve() is not None


class PathOracle:
    """Incremental Fig. 7 path-feasibility oracle for one :class:`SAEG`.

    The path constraints are Tseitin-encoded exactly once
    (``encodes == 1`` for the oracle's lifetime); a single persistent
    :class:`~repro.solver.SatSolver` then answers every
    ``realizable(nodes)`` call as a solve under assumptions of the
    nodes' ``x_<block>`` literals.  Learned clauses and saved phases
    carry over between queries, and verdicts are memoized keyed by the
    frozen block-set — many candidate (access, transmit) patterns share
    the same block footprint, so the memo absorbs most of the stream.

    Memoization is sound because the query is a pure function of the
    block-set: the root formula never changes (assumption literals are
    retracted by the solver after each call, never asserted), and
    node order within a query is irrelevant to conjunction.

    Budgeted queries go through :meth:`realizable3`, which can return
    :data:`~repro.solver.UNKNOWN` when a conflict budget or deadline
    runs out mid-solve.  UNKNOWN verdicts are never memoized (a later,
    better-funded query may still decide the same key) and are counted
    in ``unknowns``.
    """

    __slots__ = ("_solver", "_lit", "_memo", "_footprints", "encodes",
                 "hits", "misses", "unknowns")

    MAX_FOOTPRINTS = 64

    def __init__(self, saeg: SAEG):
        from repro.solver import SatSolver

        cnf = saeg.path_constraints().cnf
        self._solver = SatSolver.from_cnf(cnf)
        self._lit = {block.label: cnf.index_of[f"x_{block.label}"]
                     for block in saeg.function.blocks}
        self._memo: dict[frozenset[str], bool] = {}
        # Satisfying-path footprints: each is the executed-block set of a
        # model the solver produced.  key ⊆ footprint proves SAT without
        # a solver call (that model already executes every queried
        # block); a handful of full paths subsumes most of the engines'
        # pair/triple query stream.
        self._footprints: list[frozenset[str]] = []
        self.encodes = 1
        self.hits = 0
        self.misses = 0
        self.unknowns = 0

    def realizable(self, nodes: list[AEGNode]) -> bool:
        """Two-valued wrapper over :meth:`realizable3` that treats
        UNKNOWN as conservatively realizable: an undecided pattern is
        never dropped, it can only survive as an unconfirmed witness."""
        return self.realizable3(nodes) is not False

    def realizable3(self, nodes: list[AEGNode], *,
                    deadline: float | None = None,
                    conflict_budget: int | None = None):
        from repro.solver import UNKNOWN

        key = frozenset(node.block for node in nodes)
        cached = self._memo.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        for footprint in self._footprints:
            if key <= footprint:
                self.hits += 1
                self._memo[key] = True
                return True
        self.misses += 1
        if _fault_point("oracle.query") == "budget":
            self.unknowns += 1
            return UNKNOWN
        model = self._solver.solve(
            [self._lit[label] for label in sorted(key)],
            conflict_budget=conflict_budget, deadline=deadline)
        if model is UNKNOWN:
            # Not memoized: a later query with more budget may decide it.
            self.unknowns += 1
            return UNKNOWN
        verdict = model is not None
        if verdict and len(self._footprints) < self.MAX_FOOTPRINTS:
            footprint = frozenset(label for label, literal in self._lit.items()
                                  if model[literal])
            if footprint not in self._footprints:
                self._footprints.append(footprint)
        self._memo[key] = verdict
        return verdict

    @property
    def statistics(self) -> dict[str, int]:
        """Oracle + underlying solver counters (see SessionStats)."""
        stats = dict(self._solver.statistics)
        stats.update(encodes=self.encodes, memo_hits=self.hits,
                     memo_misses=self.misses, unknowns=self.unknowns)
        return stats


class WindowView:
    """The result of one windowed reverse BFS (see :meth:`SAEG.window`).

    ``distance(n)`` is the minimal number of fetched instructions
    strictly between n and the anchor (None if the anchor is not
    reachable within the bound); ``fence_free(n)`` is True when some
    path from n to the anchor carries no intervening lfence.
    """

    __slots__ = ("anchor", "_distances", "_clear")

    def __init__(self, anchor: AEGNode, distances: dict[int, int],
                 clear: set[int]):
        self.anchor = anchor
        self._distances = distances
        self._clear = clear

    def distance(self, node: AEGNode) -> int | None:
        return self._distances.get(node.nid)

    def contains(self, node: AEGNode) -> bool:
        return node.nid in self._distances

    def fence_free(self, node: AEGNode) -> bool:
        return node.nid in self._clear

    def nodes_within(self, saeg: "SAEG", bound: int) -> list[AEGNode]:
        return [
            saeg.nodes[nid] for nid, d in self._distances.items()
            if d <= bound
        ]
