"""Alias analysis for the S-AEG (§5.2).

Clou applies alias analysis to *reduce the search space*, under two
assumptions: (1) distinct stack allocations have distinct addresses, and
(2) alias results do **not** hold during transient execution.  Under
these assumptions Clou misses no true-positive transmitters.

Each pointer value is summarized as a provenance expression:
``(base, offset-chain)`` where the base is an alloca, a global, a pointer
argument, or unknown (a loaded/returned pointer).  Offsets are constants
or ⊤ (data-dependent).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.ir import (
    Alloca,
    Argument,
    Call,
    Cast,
    Constant,
    Function,
    GetElementPtr,
    GlobalRef,
    Instruction,
    Load,
    Temp,
    Value,
)

TOP_OFFSET = "⊤"


class AliasResult(enum.Enum):
    NO = "no"
    MAY = "may"
    MUST = "must"


@dataclass(frozen=True)
class Provenance:
    """Where a pointer points: a base plus an offset chain."""

    kind: str       # 'alloca' | 'global' | 'arg' | 'unknown'
    base: str       # alloca temp name / global name / arg name / load id
    offsets: tuple[object, ...] = ()  # ints or TOP_OFFSET

    def with_offset(self, offset: object) -> "Provenance":
        return Provenance(self.kind, self.base, self.offsets + (offset,))

    def __str__(self) -> str:
        rendered = "".join(f"[{o}]" for o in self.offsets)
        return f"{self.kind}:{self.base}{rendered}"


UNKNOWN = Provenance("unknown", "?")


class AliasAnalysis:
    """Computes pointer provenance for every temp in an A-CFG function."""

    def __init__(self, function: Function):
        self.function = function
        self.provenance: dict[str, Provenance] = {}
        self._compute()

    def _compute(self, rounds: int = 4) -> None:
        """Provenance with *slot points-to* refinement.

        -O0 code spills every pointer to a stack slot and reloads it; a
        pointer loaded from a slot whose every store writes values of one
        common provenance takes that provenance.  (LLVM's builtin alias
        analysis, which Clou selectively applies in §5.2, resolves these
        the same way.)  Each round recomputes all provenances so the
        refinement propagates through downstream GEPs and casts.
        """
        from repro.ir import Store

        self._load_overrides: dict[str, Provenance] = {}
        for _ in range(rounds):
            for block in self.function.blocks:
                for ins in block.instructions:
                    if ins.result is None:
                        continue
                    override = self._load_overrides.get(ins.result.name)
                    if override is not None and isinstance(ins, Load):
                        self.provenance[ins.result.name] = override
                    else:
                        self.provenance[ins.result.name] = self._of_instruction(ins)
            stored_by_slot: dict[Provenance, set[Provenance]] = {}
            for block in self.function.blocks:
                for ins in block.instructions:
                    if not isinstance(ins, Store):
                        continue
                    slot = self.value_provenance(ins.pointer)
                    if slot.kind != "alloca" or TOP_OFFSET in slot.offsets:
                        continue
                    stored_by_slot.setdefault(slot, set()).add(
                        self.value_provenance(ins.value)
                    )
            changed = False
            for block in self.function.blocks:
                for ins in block.instructions:
                    if not (isinstance(ins, Load) and ins.result is not None
                            and ins.result.type.is_pointer):
                        continue
                    slot = self.value_provenance(ins.pointer)
                    if slot.kind != "alloca" or TOP_OFFSET in slot.offsets:
                        continue
                    values = stored_by_slot.get(slot, set())
                    if len(values) != 1:
                        continue
                    (value,) = values
                    if value.kind == "unknown":
                        continue
                    if self._load_overrides.get(ins.result.name) != value:
                        self._load_overrides[ins.result.name] = value
                        changed = True
            if not changed:
                break

    def _of_instruction(self, ins: Instruction) -> Provenance:
        if isinstance(ins, Alloca):
            return Provenance("alloca", ins.result.name)
        if isinstance(ins, GetElementPtr):
            base = self.value_provenance(ins.base)
            for index in ins.indices:
                if isinstance(index, Constant):
                    base = base.with_offset(index.value)
                else:
                    base = base.with_offset(TOP_OFFSET)
            return base
        if isinstance(ins, Cast):
            return self.value_provenance(ins.value)
        if isinstance(ins, Load):
            if ins.result.type.is_pointer:
                # The result temp is unique per instruction and, unlike
                # id(), stable across processes — this string reaches the
                # byte-stable --json output via NodeRef.provenance.
                return Provenance("unknown", f"load:{ins.result.name}")
            return UNKNOWN
        if isinstance(ins, Call):
            return Provenance("unknown", f"call:{ins.result.name}")
        return UNKNOWN

    def value_provenance(self, value: Value) -> Provenance:
        if isinstance(value, GlobalRef):
            return Provenance("global", value.name)
        if isinstance(value, Argument):
            return Provenance("arg", value.name)
        if isinstance(value, Temp):
            return self.provenance.get(value.name, UNKNOWN)
        if isinstance(value, Constant):
            return Provenance("unknown", f"const:{value.value}")
        return UNKNOWN

    # ------------------------------------------------------------------

    def alias(self, p: Value, q: Value, transient: bool = False) -> AliasResult:
        """Alias relation between two pointer values.

        With ``transient=True``, the §5.2 assumption applies: alias
        results do not hold during transient execution, so nothing is
        provably distinct (out-of-bounds transient accesses can reach
        anywhere).  Identical provenance is still a MUST alias.
        """
        a = self.value_provenance(p)
        b = self.value_provenance(q)

        if a == b and a.kind != "unknown" and TOP_OFFSET not in a.offsets:
            return AliasResult.MUST

        if transient:
            return AliasResult.MAY

        if a.kind == "unknown" or b.kind == "unknown":
            return AliasResult.MAY
        if (a.kind, a.base) != (b.kind, b.base):
            # Distinct stack slots never alias; stack never aliases
            # globals; distinct named globals never alias (§5.2 asm. 1).
            if a.kind == "alloca" or b.kind == "alloca":
                return AliasResult.NO
            if a.kind == "global" and b.kind == "global":
                return AliasResult.NO
            # Pointer args may alias globals or each other.
            return AliasResult.MAY

        # Same base: compare offset chains.
        for off_a, off_b in zip(a.offsets, b.offsets):
            if off_a == TOP_OFFSET or off_b == TOP_OFFSET:
                return AliasResult.MAY
            if off_a != off_b:
                return AliasResult.NO
        if len(a.offsets) != len(b.offsets):
            return AliasResult.MAY
        return AliasResult.MUST

    def may_alias(self, p: Value, q: Value, transient: bool = False) -> bool:
        return self.alias(p, q, transient) is not AliasResult.NO
