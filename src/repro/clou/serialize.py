"""JSON serialization of Clou reports (for CI pipelines and tooling)."""

from __future__ import annotations

import json
from typing import Any

from repro.clou.report import ClouWitness, FunctionReport, ModuleReport, NodeRef


def _noderef_dict(ref: NodeRef | None) -> dict[str, Any] | None:
    if ref is None:
        return None
    return {
        "block": ref.block,
        "index": ref.index,
        "text": ref.text,
        "provenance": ref.provenance,
    }


def witness_dict(witness: ClouWitness) -> dict[str, Any]:
    return {
        "engine": witness.engine,
        "class": witness.klass.value,
        "transmit": _noderef_dict(witness.transmit),
        "primitive": _noderef_dict(witness.primitive),
        "access": _noderef_dict(witness.access),
        "index": _noderef_dict(witness.index),
        "window_start": _noderef_dict(witness.window_start),
        "transient_transmit": witness.transient_transmit,
        "transient_access": witness.transient_access,
        "store_hops": witness.store_hops,
    }


def function_report_dict(report: FunctionReport) -> dict[str, Any]:
    return {
        "function": report.function,
        "engine": report.engine,
        "aeg_size": report.aeg_size,
        "elapsed_seconds": report.elapsed,
        "timed_out": report.timed_out,
        "error": report.error,
        "counts": {
            klass.value: count for klass, count in report.counts().items()
        },
        "transmitters": [witness_dict(w) for w in report.transmitters()],
    }


def module_report_dict(report: ModuleReport) -> dict[str, Any]:
    return {
        "name": report.name,
        "engine": report.engine,
        "leaky": report.leaky,
        "elapsed_seconds": report.elapsed,
        "totals": {
            klass.value: count for klass, count in report.totals().items()
        },
        "functions": [function_report_dict(f) for f in report.functions],
    }


def to_json(report: ModuleReport, indent: int = 2) -> str:
    return json.dumps(module_report_dict(report), indent=indent,
                      ensure_ascii=False)
