"""JSON (de)serialization of Clou reports (for CI pipelines, tooling,
and the scheduler's on-disk result cache).

Output ordering is deterministic: transmitters come pre-sorted by
(block, index, severity) from :meth:`FunctionReport.transmitters`, and
function entries are sorted by name.  With ``stable=True`` the wall-time
fields are omitted as well, making the JSON byte-stable across runs —
what a CI pipeline wants to diff (the ``clou`` CLI uses this mode).

The ``*_from_dict`` functions invert their ``*_dict`` counterparts.
Round-tripping is witness-exact up to deduplication: serialization
stores :meth:`FunctionReport.transmitters` (one witness per distinct
(transmit, class)), so a reconstructed report has those as its witness
list — every derived quantity (``counts``, ``leaky``, ``transmitters``,
the stable JSON itself) is unchanged, which is what makes cached results
byte-identical to fresh ones.
"""

from __future__ import annotations

import json
from typing import Any

from repro.clou.report import ClouWitness, FunctionReport, ModuleReport, NodeRef
from repro.lcm.taxonomy import TransmitterClass


def _noderef_dict(ref: NodeRef | None) -> dict[str, Any] | None:
    if ref is None:
        return None
    return {
        "block": ref.block,
        "index": ref.index,
        "text": ref.text,
        "provenance": ref.provenance,
    }


def witness_dict(witness: ClouWitness) -> dict[str, Any]:
    return {
        "engine": witness.engine,
        "class": witness.klass.value,
        "transmit": _noderef_dict(witness.transmit),
        "primitive": _noderef_dict(witness.primitive),
        "access": _noderef_dict(witness.access),
        "index": _noderef_dict(witness.index),
        "window_start": _noderef_dict(witness.window_start),
        "transient_transmit": witness.transient_transmit,
        "transient_access": witness.transient_access,
        "store_hops": witness.store_hops,
        "confirmed": witness.confirmed,
    }


def function_report_dict(report: FunctionReport,
                         stable: bool = False) -> dict[str, Any]:
    out: dict[str, Any] = {
        "function": report.function,
        "engine": report.engine,
        "aeg_size": report.aeg_size,
        "timed_out": report.timed_out,
        "error": report.error,
        "verdict": report.verdict,
        "candidates": report.candidates,
        "pruned": report.pruned,
        "coverage": report.coverage(),
        "counts": {
            klass.value: count for klass, count in report.counts().items()
        },
        "transmitters": [witness_dict(w) for w in report.transmitters()],
    }
    if not stable:
        out["elapsed_seconds"] = report.elapsed
    return out


def module_report_dict(report: ModuleReport,
                       stable: bool = False) -> dict[str, Any]:
    functions = sorted(report.functions, key=lambda f: f.function)
    out: dict[str, Any] = {
        "name": report.name,
        "engine": report.engine,
        "leaky": report.leaky,
        "verdict": report.verdict,
        "complete": report.complete,
        "totals": {
            klass.value: count for klass, count in report.totals().items()
        },
        "candidates": report.candidates,
        "pruned": report.pruned,
        "coverage": report.coverage(),
        "functions": [function_report_dict(f, stable=stable)
                      for f in functions],
    }
    if report.config is not None:
        out["config"] = report.config.to_dict()
    if not stable:
        out["elapsed_seconds"] = report.elapsed
    return out


def repair_result_dict(result, stable: bool = True) -> dict[str, Any]:
    """Serialize a :class:`repro.clou.repair.RepairResult` — the repair
    arm of the daemon wire protocol (``AnalysisResult.to_dict``)."""
    return {
        "function": result.function,
        "engine": result.engine,
        "fences": [[block, index] for block, index in result.fences],
        "before": (function_report_dict(result.before, stable=stable)
                   if result.before is not None else None),
        "after": (function_report_dict(result.after, stable=stable)
                  if result.after is not None else None),
        "error": result.error,
    }


def repair_result_from_dict(data: dict[str, Any]):
    from repro.clou.repair import RepairResult

    return RepairResult(
        function=data["function"],
        engine=data["engine"],
        fences=[(block, index) for block, index in data.get("fences", [])],
        before=(function_report_from_dict(data["before"])
                if data.get("before") is not None else None),
        after=(function_report_from_dict(data["after"])
               if data.get("after") is not None else None),
        error=data.get("error"),
    )


def to_json(report: ModuleReport, indent: int = 2,
            stable: bool = False) -> str:
    return json.dumps(module_report_dict(report, stable=stable),
                      indent=indent, ensure_ascii=False, sort_keys=stable)


# ----------------------------------------------------------------------
# Deserialization (the result cache's read path)
# ----------------------------------------------------------------------


def _noderef_from_dict(data: dict[str, Any] | None) -> NodeRef | None:
    if data is None:
        return None
    return NodeRef(
        block=data["block"],
        index=data["index"],
        text=data["text"],
        provenance=data.get("provenance", ""),
    )


def witness_from_dict(data: dict[str, Any]) -> ClouWitness:
    return ClouWitness(
        engine=data["engine"],
        klass=TransmitterClass(data["class"]),
        transmit=_noderef_from_dict(data["transmit"]),
        primitive=_noderef_from_dict(data["primitive"]),
        access=_noderef_from_dict(data.get("access")),
        index=_noderef_from_dict(data.get("index")),
        window_start=_noderef_from_dict(data.get("window_start")),
        transient_transmit=data.get("transient_transmit", True),
        transient_access=data.get("transient_access", False),
        store_hops=data.get("store_hops", 0),
        confirmed=data.get("confirmed", True),
    )


def function_report_from_dict(data: dict[str, Any]) -> FunctionReport:
    coverage = data.get("coverage", {})
    return FunctionReport(
        function=data["function"],
        engine=data["engine"],
        witnesses=[witness_from_dict(w) for w in data.get("transmitters", [])],
        aeg_size=data.get("aeg_size", 0),
        elapsed=data.get("elapsed_seconds", 0.0),
        timed_out=data.get("timed_out", False),
        error=data.get("error"),
        candidates=data.get("candidates", 0),
        pruned=data.get("pruned", 0),
        skipped=coverage.get("skipped_by_budget", 0),
        undecided=coverage.get("undecided", 0),
    )


def module_report_from_dict(data: dict[str, Any]) -> ModuleReport:
    from repro.clou.engine import ClouConfig

    config = data.get("config")
    return ModuleReport(
        name=data["name"],
        engine=data["engine"],
        functions=[function_report_from_dict(f)
                   for f in data.get("functions", [])],
        config=ClouConfig.from_dict(config) if config is not None else None,
    )
