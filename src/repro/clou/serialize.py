"""JSON serialization of Clou reports (for CI pipelines and tooling).

Output ordering is deterministic: transmitters come pre-sorted by
(block, index, severity) from :meth:`FunctionReport.transmitters`, and
function entries are sorted by name.  With ``stable=True`` the wall-time
fields are omitted as well, making the JSON byte-stable across runs —
what a CI pipeline wants to diff (the ``clou`` CLI uses this mode).
"""

from __future__ import annotations

import json
from typing import Any

from repro.clou.report import ClouWitness, FunctionReport, ModuleReport, NodeRef


def _noderef_dict(ref: NodeRef | None) -> dict[str, Any] | None:
    if ref is None:
        return None
    return {
        "block": ref.block,
        "index": ref.index,
        "text": ref.text,
        "provenance": ref.provenance,
    }


def witness_dict(witness: ClouWitness) -> dict[str, Any]:
    return {
        "engine": witness.engine,
        "class": witness.klass.value,
        "transmit": _noderef_dict(witness.transmit),
        "primitive": _noderef_dict(witness.primitive),
        "access": _noderef_dict(witness.access),
        "index": _noderef_dict(witness.index),
        "window_start": _noderef_dict(witness.window_start),
        "transient_transmit": witness.transient_transmit,
        "transient_access": witness.transient_access,
        "store_hops": witness.store_hops,
    }


def function_report_dict(report: FunctionReport,
                         stable: bool = False) -> dict[str, Any]:
    out: dict[str, Any] = {
        "function": report.function,
        "engine": report.engine,
        "aeg_size": report.aeg_size,
        "timed_out": report.timed_out,
        "error": report.error,
        "candidates": report.candidates,
        "pruned": report.pruned,
        "counts": {
            klass.value: count for klass, count in report.counts().items()
        },
        "transmitters": [witness_dict(w) for w in report.transmitters()],
    }
    if not stable:
        out["elapsed_seconds"] = report.elapsed
    return out


def module_report_dict(report: ModuleReport,
                       stable: bool = False) -> dict[str, Any]:
    functions = sorted(report.functions, key=lambda f: f.function)
    out: dict[str, Any] = {
        "name": report.name,
        "engine": report.engine,
        "leaky": report.leaky,
        "totals": {
            klass.value: count for klass, count in report.totals().items()
        },
        "candidates": report.candidates,
        "pruned": report.pruned,
        "functions": [function_report_dict(f, stable=stable)
                      for f in functions],
    }
    if not stable:
        out["elapsed_seconds"] = report.elapsed
    return out


def to_json(report: ModuleReport, indent: int = 2,
            stable: bool = False) -> str:
    return json.dumps(module_report_dict(report, stable=stable),
                      indent=indent, ensure_ascii=False, sort_keys=stable)
