"""Clou's top-level driver (Fig. 6): C source → LLVM-like IR → A-CFG →
S-AEG → leakage detection engines → transmitters / witnesses / repair."""

from __future__ import annotations

from dataclasses import field

from repro.clou.acfg import build_acfg
from repro.clou.aeg import SAEG
from repro.clou.engine import CLOU_DEFAULT_CONFIG, ClouConfig, ENGINES
from repro.clou.repair import RepairResult, repair
from repro.clou.report import FunctionReport, ModuleReport
from repro.errors import AnalysisError, ReproError
from repro.ir import Module
from repro.minic import compile_c

__all__ = [
    "CLOU_DEFAULT_CONFIG",
    "ClouConfig",
    "analyze_function",
    "analyze_module",
    "analyze_source",
    "repair_function",
    "repair_source",
]


def analyze_function(module: Module, function_name: str,
                     engine: str = "pht",
                     config: ClouConfig = CLOU_DEFAULT_CONFIG) -> FunctionReport:
    """Analyze one public function with one engine."""
    if engine not in ENGINES:
        raise AnalysisError(f"unknown engine {engine!r}; choose from "
                            f"{sorted(ENGINES)}")
    try:
        acfg = build_acfg(module, function_name)
        aeg = SAEG(acfg.function)
        return ENGINES[engine](aeg, config).run()
    except ReproError as error:
        return FunctionReport(
            function=function_name, engine=engine, error=str(error),
        )


def analyze_module(module: Module, engine: str = "pht",
                   config: ClouConfig = CLOU_DEFAULT_CONFIG) -> ModuleReport:
    """Analyze each defined public function one-by-one (§5)."""
    report = ModuleReport(name=module.name or "<module>", engine=engine)
    for function in module.public_functions():
        report.functions.append(
            analyze_function(module, function.name, engine, config)
        )
    return report


def analyze_source(source: str, engine: str = "pht",
                   config: ClouConfig = CLOU_DEFAULT_CONFIG,
                   name: str = "") -> ModuleReport:
    """The whole Fig. 6 pipeline from C source text."""
    module = compile_c(source, name=name)
    return analyze_module(module, engine, config)


def repair_function(module: Module, function_name: str, engine: str = "pht",
                    config: ClouConfig = CLOU_DEFAULT_CONFIG) -> RepairResult:
    acfg = build_acfg(module, function_name)
    return repair(acfg.function, engine, config)


def repair_source(source: str, engine: str = "pht",
                  config: ClouConfig = CLOU_DEFAULT_CONFIG,
                  name: str = "") -> list[RepairResult]:
    module = compile_c(source, name=name)
    return [
        repair_function(module, function.name, engine, config)
        for function in module.public_functions()
    ]
