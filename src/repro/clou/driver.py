"""Deprecated free-function drivers for the Fig. 6 pipeline.

.. deprecated::
    The one-call-per-knob functions below predate the session API.  New
    code should hold a :class:`repro.sched.ClouSession` — it owns the
    config, the worker pool, the per-item timeout, and the result
    cache, and it shares one S-AEG per function across engines::

        from repro.sched import AnalysisRequest, ClouSession

        session = ClouSession(jobs=4)
        report = session.analyze(
            AnalysisRequest.analyze(source, engine="pht", name="victim.c"))
        repairs = session.repair(AnalysisRequest.repair(source, engine="pht"))

    These shims forward to a private serial session and emit a
    :class:`DeprecationWarning`.  The repo's own test suite escalates
    that warning to an error (see ``setup.cfg``), so internal callers
    cannot quietly regress onto the old API; user code keeps working.
"""

from __future__ import annotations

import warnings

from repro.clou.engine import CLOU_DEFAULT_CONFIG, ClouConfig
from repro.clou.repair import RepairResult
from repro.clou.report import FunctionReport, ModuleReport
from repro.ir import Module

__all__ = [
    "CLOU_DEFAULT_CONFIG",
    "ClouConfig",
    "analyze_function",
    "analyze_module",
    "analyze_source",
    "repair_function",
    "repair_source",
]


def _deprecated(old: str, replacement: str) -> None:
    warnings.warn(
        f"repro.clou.{old} is deprecated; use "
        f"repro.sched.ClouSession.{replacement} instead",
        DeprecationWarning, stacklevel=3)


def _session(config: ClouConfig):
    # A fresh serial, cache-less session per call: bitwise-faithful to
    # the historical behaviour (no cross-call state beyond the
    # process-local compile/S-AEG memo caches, which are content-keyed).
    from repro.sched import ClouSession

    return ClouSession(config=config, jobs=1, cache=False)


def analyze_function(module: Module, function_name: str,
                     engine: str = "pht",
                     config: ClouConfig = CLOU_DEFAULT_CONFIG
                     ) -> FunctionReport:
    """Deprecated: analyze one public function with one engine."""
    from repro.sched import AnalysisRequest

    _deprecated("analyze_function", "analyze")
    report = _session(config).analyze(AnalysisRequest.for_module(
        module, engine=engine, functions=(function_name,)))
    return report.functions[0]


def analyze_module(module: Module, engine: str = "pht",
                   config: ClouConfig = CLOU_DEFAULT_CONFIG) -> ModuleReport:
    """Deprecated: analyze each defined public function one-by-one."""
    from repro.sched import AnalysisRequest

    _deprecated("analyze_module", "analyze")
    return _session(config).analyze(
        AnalysisRequest.for_module(module, engine=engine))


def analyze_source(source: str, engine: str = "pht",
                   config: ClouConfig = CLOU_DEFAULT_CONFIG,
                   name: str = "") -> ModuleReport:
    """Deprecated: the whole Fig. 6 pipeline from C source text."""
    from repro.sched import AnalysisRequest

    _deprecated("analyze_source", "analyze")
    return _session(config).analyze(
        AnalysisRequest.analyze(source, engine=engine, name=name))


def repair_function(module: Module, function_name: str, engine: str = "pht",
                    config: ClouConfig = CLOU_DEFAULT_CONFIG) -> RepairResult:
    """Deprecated: detect and fence-repair one function."""
    _deprecated("repair_function", "repair")
    from repro.clou.acfg import build_acfg
    from repro.clou.repair import repair

    acfg = build_acfg(module, function_name)
    return repair(acfg.function, engine, config)


def repair_source(source: str, engine: str = "pht",
                  config: ClouConfig = CLOU_DEFAULT_CONFIG,
                  name: str = "") -> list[RepairResult]:
    """Deprecated: detect and fence-repair every public function."""
    from repro.sched import AnalysisRequest

    _deprecated("repair_source", "repair")
    return _session(config).repair(
        AnalysisRequest.repair(source, engine=engine, name=name))
