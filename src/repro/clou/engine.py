"""Leakage detection engines (§5.3).

Clou-PHT hunts Spectre v1/v1.1 patterns (speculation primitive: a
conditional branch steering a transient window); Clou-STL hunts Spectre
v4 patterns (speculation primitive: store-to-load forwarding past an
unresolved store).  Both look for violations of rf-non-interference and
then classify candidate transmitters by Table 1.

Scaling controls follow §6.2.1:

1. a sliding window — for each candidate transmitter only the
   instructions that can reach it within ``window_size`` instructions
   are considered (implemented as one windowed reverse BFS per
   transmitter, see :meth:`repro.clou.aeg.SAEG.window`);
2. at most one speculative write in a pattern (``max_store_hops``);
3. universal patterns require a *transient* access instruction; a
   universal chain whose access commits is classified as a DT/CT.

The ``addr_gep`` filter (§5.3) applies to PHT only: the first addr
dependency of a universal pattern must be a getelementptr-index
dependency, filtering benign dereferences of trusted base pointers.
Spectre v4 can overwrite base pointers themselves, so STL cannot use it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields

from repro.clou.aeg import AEGNode, Dep, SAEG, WindowView
from repro.clou.alias import AliasResult
from repro.clou.report import ClouWitness, FunctionReport, NodeRef
from repro.lcm.taxonomy import TransmitterClass


@dataclass(frozen=True)
class ClouConfig:
    """Analysis parameters (Fig. 6's "configuration parameters").

    The dataclass is frozen, so configs are hashable and usable as cache
    keys directly; :meth:`to_dict` / :meth:`from_dict` round-trip a
    config through JSON (``clou analyze --json`` embeds it, and the
    scheduler's on-disk result cache keys on :meth:`cache_key`).
    """

    rob_size: int = 250
    lsq_size: int = 50
    window_size: int = 250
    classes: tuple[str, ...] = ("udt", "uct", "dt", "ct")
    addr_gep_filter: bool = True
    max_store_hops: int = 1
    require_transient_access: bool = True
    timeout_seconds: float | None = None
    max_witnesses_per_function: int = 5000
    assume_alias_prediction: bool = False
    """§5.2: Clou's default hardware assumption is NO alias prediction;
    enabling this models PSF-style hardware — STL bypass pairs are then
    computed with transient alias results (anything may forward)."""
    detect_interference_variant: bool = False
    """§6.1: also report the new attack variant Clou identified in every
    PHT program — a DT where a *transient* instruction prefetches a cache
    line for a *non-transient*, tfo-prior instruction still in flight
    (the speculative-interference phenomenon)."""
    enable_range_pruning: bool = True
    """Use the branch-independent interval analysis
    (:mod:`repro.analysis.interval`) to skip *universal* classification
    hops whose access is provably in-bounds even transiently — such an
    access can only read its own object, so the chain degrades to the
    DT/CT case the engine reports anyway.  PHT only: under STL the
    bypassed store invalidates the slot-range reasoning.  Sound because
    the intervals never trust branch conditions, so a mispredicted
    bounds check proves nothing (the Spectre v1 gadget stays flagged)."""
    solver_conflict_budget: int | None = None
    """Per-query conflict cap for σ-compatibility SAT queries.  A query
    that exhausts it returns UNKNOWN; the pattern is kept conservatively
    as an unconfirmed witness and the report counts it ``undecided``.
    None (the default) leaves queries unbounded (the wall-clock deadline
    from ``timeout_seconds`` still applies to each query)."""
    fault_spec: str | None = None
    """A :mod:`repro.sched.faults` injection spec armed for this
    analysis (e.g. ``"seed=1;budget@oracle.query%0.5"``).  Testing knob:
    off by default, travels with the config into worker processes so
    degradation tests are deterministic regardless of scheduling."""

    def to_dict(self) -> dict:
        """A JSON-ready dict with every field (tuples become lists)."""
        out = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            out[spec.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ClouConfig":
        """Inverse of :meth:`to_dict`.  Missing fields take their
        defaults (old serialized configs keep loading after new knobs
        are added); unknown keys are rejected."""
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ClouConfig fields: {sorted(unknown)}")
        kwargs = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in data.items()
        }
        return cls(**kwargs)

    def cache_key(self) -> str:
        """A canonical string for content-addressed caching: field order
        and list/tuple distinctions are normalized away."""
        import json

        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


CLOU_DEFAULT_CONFIG = ClouConfig()


class _Budget:
    def __init__(self, seconds: float | None):
        self.deadline = time.monotonic() + seconds if seconds else None
        self.expired = False

    def check(self) -> bool:
        if self.deadline is not None and time.monotonic() > self.deadline:
            self.expired = True
        return self.expired


class _SearchState:
    """Checkpoint bookkeeping for one engine run.

    ``cursor``/``icursor`` count memory nodes fully processed by the
    main/interference search loops; a resumed run replays the node
    enumeration (which is deterministic) and skips the prefix.  The
    snapshot payload is self-contained — serialized witnesses plus the
    coverage counters — so a fresh process can seed
    :meth:`DetectionEngine.run` with it and produce a report equal to an
    uninterrupted run: the suffix is recomputed identically, and the
    counters resume from their checkpointed values.  Witness dicts are
    cached incrementally so each snapshot serializes only new ones.
    """

    def __init__(self, resume: dict | None, emit) -> None:
        self.cursor = 0
        self.icursor = 0
        self.total = 0
        self._emit = emit
        self._witness_dicts: list[dict] = []
        if resume:
            self.cursor = resume.get("cursor", 0)
            self.icursor = resume.get("icursor", 0)
            self._witness_dicts = list(resume.get("witnesses", []))

    def seed(self, report: FunctionReport, resume: dict | None) -> None:
        """Restore a report's witnesses and counters from a checkpoint."""
        if not resume:
            return
        from repro.clou.serialize import witness_from_dict

        report.witnesses.extend(
            witness_from_dict(w) for w in resume.get("witnesses", []))
        report.candidates = resume.get("candidates", 0)
        report.pruned = resume.get("pruned", 0)
        report.undecided = resume.get("undecided", 0)
        report.skipped = resume.get("skipped", 0)

    def snapshot(self, report: FunctionReport) -> None:
        if self._emit is None:
            return
        from repro.clou.serialize import witness_dict

        while len(self._witness_dicts) < len(report.witnesses):
            self._witness_dicts.append(
                witness_dict(report.witnesses[len(self._witness_dicts)]))
        self._emit({
            "cursor": self.cursor,
            "icursor": self.icursor,
            "total": self.total,
            "candidates": report.candidates,
            "pruned": report.pruned,
            "undecided": report.undecided,
            "skipped": report.skipped,
            "witnesses": list(self._witness_dicts),
        })


def _ref(node: AEGNode | None, aeg=None) -> NodeRef | None:
    return NodeRef.of(node, aeg) if node is not None else None


ENGINES: dict[str, type["DetectionEngine"]] = {}
"""The engine registry: name -> DetectionEngine subclass.

Populated by :func:`register_engine`.  Every consumer — CLI ``--engine``
choices, scheduler/session validation, cache keying, the bench harness
engine columns, the fuzz oracle matrix, and the fault sweep — derives
its engine list from this dict, so registering a new engine once makes
it reachable everywhere.
"""


def register_engine(cls: type["DetectionEngine"]) -> type["DetectionEngine"]:
    """Class decorator adding a :class:`DetectionEngine` subclass to
    :data:`ENGINES` under its ``name``.  Names must be unique and not
    the abstract base's placeholder."""
    name = getattr(cls, "name", "")
    if not name or name == "base":
        raise ValueError(f"engine class {cls.__name__} needs a "
                         "non-default 'name' attribute to register")
    if name in ENGINES:
        raise ValueError(f"duplicate engine name {name!r} "
                         f"({ENGINES[name].__name__} vs {cls.__name__})")
    ENGINES[name] = cls
    return cls


def engine_names() -> tuple[str, ...]:
    """All registered engine names, sorted (the CLI's choice list)."""
    return tuple(sorted(ENGINES))


class DetectionEngine:
    """Shared machinery for the detection engines."""

    name = "base"
    # Metadata for ``clou analyze --list-engines`` and the DESIGN.md
    # engine matrix; subclasses override all four.
    attack = ""          # attack class the engine hunts
    primitive = ""       # speculation primitive
    range_pruning = ""   # interval range-pruning capability
    repair_note = ""     # fence placement the repair stage uses

    def __init__(self, aeg: SAEG, config: ClouConfig = CLOU_DEFAULT_CONFIG):
        self.aeg = aeg
        self.config = config
        self._ranges = None     # lazily-built IntervalAnalysis
        self._ranges_built = False

    # -- per-engine hooks --------------------------------------------------

    def prunes_ranges(self) -> bool:
        """Does this engine apply interval range pruning?  (PHT only:
        under STL the bypassed store invalidates slot-range reasoning.)"""
        return False

    @property
    def ranges(self):
        """The engine's IntervalAnalysis, built on first use."""
        if not self._ranges_built:
            self._ranges_built = True
            if self.prunes_ranges():
                from repro.analysis.interval import IntervalAnalysis

                self._ranges = IntervalAnalysis(self.aeg.function)
        return self._ranges

    def speculation_sources(self, transmit: AEGNode, view: WindowView
                            ) -> list[tuple[AEGNode, AEGNode | None]]:
        """Candidate (primitive, window_start) pairs that could make
        ``transmit`` execute transiently (window_start is the first
        transient instruction; None means the primitive itself)."""
        raise NotImplementedError

    def universal_first_hop_ok(self, dep: Dep) -> bool:
        raise NotImplementedError

    # -- shared search -------------------------------------------------------

    def run(self, *, resume: dict | None = None,
            checkpoint=None) -> FunctionReport:
        """Run the search.  ``resume`` is a checkpoint payload from an
        earlier interrupted run of the same (function, engine, config);
        ``checkpoint`` is a callable receiving snapshot dicts after each
        fully-processed candidate.  The final report is identical
        whether or not the run was interrupted and resumed."""
        started = time.monotonic()
        budget = _Budget(self.config.timeout_seconds)
        report = FunctionReport(
            function=self.aeg.function.name,
            engine=self.name,
            aeg_size=self.aeg.size,
        )
        state = _SearchState(resume, checkpoint)
        state.seed(report, resume)
        # The S-AEG (and hence its PathOracle) may be shared with other
        # engine runs, so attribute only this run's counter deltas.
        oracle = self.aeg._path_oracle
        before = oracle.statistics if oracle is not None else {}
        try:
            self._search(report, budget, state)
        finally:
            report.elapsed = time.monotonic() - started
            report.timed_out = budget.expired
            oracle = self.aeg._path_oracle
            if oracle is not None:
                report.sat_stats = {
                    key: value - before.get(key, 0)
                    for key, value in oracle.statistics.items()
                }
        return report

    def _search(self, report: FunctionReport, budget: _Budget,
                state: _SearchState) -> None:
        from repro.sched.faults import fault_point

        want = set(self.config.classes)
        bound = max(self.config.rob_size, self.config.window_size)
        nodes = self.aeg.memory_nodes()
        state.total = len(nodes)
        for pos, transmit in enumerate(nodes):
            if pos < state.cursor:
                continue  # already covered by the resumed checkpoint
            if budget.check() or \
                    len(report.witnesses) >= \
                    self.config.max_witnesses_per_function:
                report.skipped += len(nodes) - pos
                return
            address_deps = self.aeg.address_deps(transmit)
            has_control_work = "ct" in want or "uct" in want
            if not address_deps and not has_control_work:
                state.cursor = pos + 1
                fault_point("engine.candidate", hit=pos + 1)
                continue
            if self.prunes_ranges() and "dt" not in want:
                # Without DT work an address dep matters only as the head
                # of a universal chain, which a provably-bounded access
                # cannot be — filter those deps before paying for the
                # windowed BFS (and skip the transmitter entirely when
                # nothing is left).
                kept = tuple(
                    dep for dep in address_deps
                    if not self._access_provably_bounded(
                        self.aeg.node_of(dep.source)))
                report.pruned += len(address_deps) - len(kept)
                address_deps = kept
                if not address_deps and not has_control_work:
                    state.cursor = pos + 1
                    fault_point("engine.candidate", hit=pos + 1)
                    continue
            report.candidates += 1
            view = self.aeg.window(transmit, bound)
            self._search_transmit(transmit, view, address_deps, want,
                                  report, budget)
            if budget.expired:
                # The candidate was cut short mid-search: counted as
                # examined, but the cursor stays put so a resume redoes
                # it in full (witness dedup keeps the output stable).
                continue
            state.cursor = pos + 1
            state.snapshot(report)
            # Positional injection point: fires after this candidate is
            # checkpointed, so a resumed attempt starts past the fault.
            fault_point("engine.candidate", hit=pos + 1)

    def _search_transmit(self, transmit: AEGNode, view: WindowView,
                         address_deps: tuple[Dep, ...], want: set[str],
                         report: FunctionReport, budget: _Budget) -> None:
        primitives = self.speculation_sources(transmit, view)
        if not primitives:
            return
        for dep in address_deps:
            if budget.check():
                return
            if dep.store_hops > self.config.max_store_hops:
                continue
            access = self.aeg.node_of(dep.source)
            if access.nid == transmit.nid:
                continue
            if not view.contains(access):
                continue  # outside the sliding window
            self._classify_chain(transmit, access, dep, primitives,
                                 view, want, report, budget)
        if "ct" in want or "uct" in want:
            self._search_control(transmit, view, primitives, want,
                                 report, budget)

    def _sigma_compatible(self, nodes: list[AEGNode],
                          report: FunctionReport, budget: _Budget):
        """Three-valued Fig. 7 σ-compatibility with this run's budgets
        threaded into the solver.  UNKNOWN (budget/deadline exhausted)
        is counted in ``report.undecided``; callers keep the pattern
        conservatively but mark its witnesses unconfirmed."""
        verdict = self.aeg.realizable3(
            nodes,
            deadline=budget.deadline,
            conflict_budget=self.config.solver_conflict_budget,
        )
        if verdict is True or verdict is False:
            return verdict
        report.undecided += 1
        return verdict  # UNKNOWN

    def _classify_chain(self, transmit: AEGNode, access: AEGNode, dep: Dep,
                        primitives: list[tuple[AEGNode, AEGNode | None]],
                        view: WindowView, want: set[str],
                        report: FunctionReport, budget: _Budget) -> None:
        # Fig. 7 σ-compatibility: the chain endpoints must co-execute on
        # one architectural path (an assumption query on the PathOracle;
        # the window BFS already walks real CFG edges, so this can only
        # reject patterns the pairwise checks over-approximated).
        pair = self._sigma_compatible([access, transmit], report, budget)
        if pair is False:
            return
        pair_confirmed = pair is True
        for primitive, window_start in primitives:
            access_transient = self._is_transient(access, primitive,
                                                  window_start, view)
            transmit_transient = self._is_transient(transmit, primitive,
                                                    window_start, view)
            if not (access_transient or transmit_transient):
                continue
            reported_universal = False
            universal_wanted = "udt" in want
            if universal_wanted and self._access_provably_bounded(access):
                report.pruned += 1
                universal_wanted = False
            if universal_wanted:
                for index_dep in self.aeg.address_deps(access):
                    if not self.universal_first_hop_ok(index_dep):
                        continue
                    if dep.store_hops + index_dep.store_hops > \
                            self.config.max_store_hops:
                        continue
                    index = self.aeg.node_of(index_dep.source)
                    if index.nid == access.nid:
                        continue
                    if not self.aeg.before(index, access):
                        continue
                    if not view.contains(index):
                        continue
                    # Joint σ-compatibility of the full universal chain.
                    triple = self._sigma_compatible(
                        [index, access, transmit], report, budget)
                    if triple is False:
                        continue
                    if not self._index_attacker_controlled(index):
                        continue
                    if self.config.require_transient_access and \
                            not access_transient:
                        # Committed access: leakage scope is bounded, so
                        # the pattern downgrades to a DT (§6.2.1).
                        continue
                    report.witnesses.append(ClouWitness(
                        engine=self.name,
                        klass=TransmitterClass.UNIVERSAL_DATA,
                        transmit=NodeRef.of(transmit, self.aeg),
                        primitive=NodeRef.of(primitive, self.aeg),
                        access=NodeRef.of(access, self.aeg),
                        index=NodeRef.of(index, self.aeg),
                        window_start=_ref(window_start, self.aeg),
                        transient_transmit=transmit_transient,
                        transient_access=access_transient,
                        store_hops=dep.store_hops + index_dep.store_hops,
                        confirmed=pair_confirmed and triple is True,
                    ))
                    reported_universal = True
                    break
            if "dt" in want and not reported_universal:
                report.witnesses.append(ClouWitness(
                    engine=self.name,
                    klass=TransmitterClass.DATA,
                    transmit=NodeRef.of(transmit, self.aeg),
                    primitive=NodeRef.of(primitive, self.aeg),
                    access=NodeRef.of(access, self.aeg),
                    window_start=_ref(window_start, self.aeg),
                    transient_transmit=transmit_transient,
                    transient_access=access_transient,
                    store_hops=dep.store_hops,
                    confirmed=pair_confirmed,
                ))
            return  # one primitive witness per chain suffices

    def _search_control(self, transmit: AEGNode, view: WindowView,
                        primitives: list[tuple[AEGNode, AEGNode | None]],
                        want: set[str], report: FunctionReport,
                        budget: _Budget) -> None:
        """access -ctrl-> transmit patterns: the transmitter leaks the
        outcome of a branch on the access's loaded value."""
        for branch in self._branches_in(view):
            if budget.check():
                return
            cond_deps = self.aeg.branch_cond_deps(branch)
            if not cond_deps:
                continue
            # σ-compatibility of branch and transmitter (Fig. 7).
            branch_ok = self._sigma_compatible([branch, transmit],
                                               report, budget)
            if branch_ok is False:
                continue
            branch_confirmed = branch_ok is True
            for primitive, window_start in primitives:
                transmit_transient = self._is_transient(
                    transmit, primitive, window_start, view)
                if not transmit_transient:
                    continue
                for dep in cond_deps:
                    if dep.store_hops > self.config.max_store_hops:
                        continue
                    access = self.aeg.node_of(dep.source)
                    access_transient = self._is_transient(
                        access, primitive, window_start, view)
                    uct_wanted = "uct" in want
                    if uct_wanted and self._access_provably_bounded(access):
                        report.pruned += 1
                        uct_wanted = False
                    if uct_wanted:
                        reported = False
                        for index_dep in self.aeg.address_deps(access):
                            if not self.universal_first_hop_ok(index_dep):
                                continue
                            index = self.aeg.node_of(index_dep.source)
                            if index.nid == access.nid:
                                continue
                            if not self.aeg.before(index, access):
                                continue
                            if not self._index_attacker_controlled(index):
                                continue
                            if self.config.require_transient_access and \
                                    not access_transient:
                                continue
                            report.witnesses.append(ClouWitness(
                                engine=self.name,
                                klass=TransmitterClass.UNIVERSAL_CONTROL,
                                transmit=NodeRef.of(transmit, self.aeg),
                                primitive=NodeRef.of(primitive, self.aeg),
                                access=NodeRef.of(access, self.aeg),
                                index=NodeRef.of(index, self.aeg),
                                window_start=_ref(window_start, self.aeg),
                                transient_transmit=transmit_transient,
                                transient_access=access_transient,
                                store_hops=dep.store_hops + index_dep.store_hops,
                                confirmed=branch_confirmed,
                            ))
                            reported = True
                            break
                        if reported:
                            break
                    if "ct" in want:
                        report.witnesses.append(ClouWitness(
                            engine=self.name,
                            klass=TransmitterClass.CONTROL,
                            transmit=NodeRef.of(transmit, self.aeg),
                            primitive=NodeRef.of(primitive, self.aeg),
                            access=NodeRef.of(access, self.aeg),
                            window_start=_ref(window_start, self.aeg),
                            transient_transmit=transmit_transient,
                            transient_access=access_transient,
                            store_hops=dep.store_hops,
                            confirmed=branch_confirmed,
                        ))
                        break
                break

    # -- helpers ---------------------------------------------------------------

    def _branches_in(self, view: WindowView) -> list[AEGNode]:
        found = [
            node for node in view.nodes_within(self.aeg, self.config.window_size)
            if node.is_branch
        ]
        found.sort(key=lambda n: n.position)
        return found

    def _is_transient(self, node: AEGNode, primitive: AEGNode,
                      window_start: AEGNode | None, view: WindowView) -> bool:
        """Does the node lie inside the primitive's transient window?

        The view is anchored at the transmitter; the origin's distance to
        the anchor bounds the distance to any node between them.
        """
        origin = window_start or primitive
        if node.nid == origin.nid:
            return True
        if not self.aeg.before(origin, node):
            return False
        if node.nid == view.anchor.nid:
            distance = view.distance(origin)
            return (distance is not None
                    and distance <= self.config.rob_size
                    and view.fence_free(origin))
        origin_distance = view.distance(origin)
        if origin_distance is None or origin_distance > self.config.rob_size:
            return False
        return view.fence_free(origin)

    def _index_attacker_controlled(self, index: AEGNode) -> bool:
        result = index.instruction.result
        return result is not None and self.aeg.value_tainted(result)

    def _access_provably_bounded(self, access: AEGNode) -> bool:
        """Range pruning (engines opting in via :meth:`prunes_ranges`):
        an access that stays inside its object on every A-CFG path
        cannot head a universal chain."""
        if not self.prunes_ranges():
            return False
        return self.ranges.access_in_bounds(access.instruction)


@register_engine
class ClouPHT(DetectionEngine):
    """Spectre v1: control-flow speculation (§5.3)."""

    name = "pht"
    attack = "Spectre v1 (bounds check bypass)"
    primitive = "mispredicted conditional branch"
    range_pruning = "first hop (branch-independent intervals)"
    repair_note = "lfence in the transmit window (1/program in §6.1)"

    def prunes_ranges(self) -> bool:
        return self.config.enable_range_pruning

    def _search(self, report: FunctionReport, budget: _Budget,
                state: _SearchState) -> None:
        super()._search(report, budget, state)
        if self.config.detect_interference_variant:
            self._search_interference(report, budget, state)

    def _search_interference(self, report: FunctionReport, budget: _Budget,
                             state: _SearchState) -> None:
        """The §6.1 variant: a transient load T warms the cache line of
        a committed, tfo-prior load C that is still in flight — T's
        address modulates C's latency, a data transmitter through
        interference (cf. speculative interference attacks)."""
        loads = self.aeg.loads()
        for ipos, transient_load in enumerate(loads):
            if ipos < state.icursor:
                continue
            if budget.check():
                report.skipped += len(loads) - ipos
                return
            self._interference_for_load(transient_load, loads, report)
            state.icursor = ipos + 1
            state.snapshot(report)

    def _interference_for_load(self, transient_load: AEGNode,
                               committed_loads: list[AEGNode],
                               report: FunctionReport) -> None:
        view = self.aeg.window(transient_load, self.config.rob_size)
        primitives = self.speculation_sources(transient_load, view)
        if not primitives:
            return
        primitive, window_start = primitives[0]
        if not self._is_transient(transient_load, primitive,
                                  window_start, view):
            return
        deps = self.aeg.address_deps(transient_load)
        if not deps:
            return  # a constant-address prefetch transmits nothing
        for committed in committed_loads:
            if committed.nid == transient_load.nid:
                continue
            # The committed access is tfo-prior, still within the
            # same in-flight window, and not itself transient.
            if not self.aeg.before(committed, transient_load):
                continue
            if self._is_transient(committed, primitive, window_start, view):
                continue
            distance = view.distance(committed)
            if distance is None or distance > self.config.rob_size:
                continue
            if not self.aeg.alias.may_alias(
                committed.instruction.pointer,
                transient_load.instruction.pointer,
                transient=True,
            ):
                continue
            access = self.aeg.node_of(deps[0].source)
            report.witnesses.append(ClouWitness(
                engine=self.name,
                klass=TransmitterClass.DATA,
                transmit=NodeRef.of(transient_load, self.aeg),
                primitive=NodeRef.of(primitive, self.aeg),
                access=NodeRef.of(access, self.aeg),
                window_start=NodeRef.of(committed, self.aeg),
                transient_transmit=True,
                transient_access=False,
                store_hops=deps[0].store_hops,
            ))
            break  # one interference witness per transient load

    def speculation_sources(self, transmit: AEGNode, view: WindowView
                            ) -> list[tuple[AEGNode, AEGNode | None]]:
        sources = []
        for branch in self._branches_in(view):
            distance = view.distance(branch)
            if distance is None or distance > self.config.rob_size:
                continue
            if not view.fence_free(branch):
                continue
            sources.append((branch, None))
        return sources

    def universal_first_hop_ok(self, dep: Dep) -> bool:
        # The addr_gep filter: base pointers stored in memory are not
        # attacker-controlled architecturally (§5.3).
        if self.config.addr_gep_filter:
            return dep.via_gep_index
        return True


@register_engine
class ClouSTL(DetectionEngine):
    """Spectre v4: store-to-load forwarding bypass (§5.3)."""

    name = "stl"
    attack = "Spectre v4 (speculative store bypass)"
    primitive = "load bypassing an unresolved same-address store"
    range_pruning = "none (the bypassed store invalidates slot ranges)"
    repair_note = "lfence between bypassed store and bypassing load"

    def __init__(self, aeg: SAEG, config: ClouConfig = CLOU_DEFAULT_CONFIG):
        super().__init__(aeg, config)
        self._bypassable = self._compute_bypassable()

    def _compute_bypassable(self) -> dict[int, AEGNode]:
        """load nid -> one store it can transiently bypass.

        A load bypasses a store when the store is possibly-same-address,
        still in the LSQ (within ``lsq_size`` instructions), and no
        lfence separates them.
        """
        bypassable: dict[int, AEGNode] = {}
        if self.config.lsq_size <= 0:
            return bypassable  # no store can be in flight
        for load in self.aeg.loads():
            view = self.aeg.window(load, self.config.lsq_size)
            best: AEGNode | None = None
            for node in view.nodes_within(self.aeg, self.config.lsq_size):
                if not node.is_store:
                    continue
                if not view.fence_free(node):
                    continue
                if not self.aeg.alias.may_alias(
                    node.instruction.pointer, load.instruction.pointer,
                    transient=self.config.assume_alias_prediction,
                ):
                    continue
                if best is None or node.position > best.position:
                    best = node
            if best is not None:
                bypassable[load.nid] = best
        return bypassable

    def speculation_sources(self, transmit: AEGNode, view: WindowView
                            ) -> list[tuple[AEGNode, AEGNode | None]]:
        """The primitive is a bypassed store; the transient window starts
        at the bypassing load.  Any bypassable load ahead of the
        transmitter (within the ROB) opens a window over it."""
        sources = []
        for node in view.nodes_within(self.aeg, self.config.rob_size):
            if not node.is_load:
                continue
            store = self._bypassable.get(node.nid)
            if store is None:
                continue
            if not view.fence_free(node):
                continue
            sources.append((store, node))
        sources.sort(key=lambda pair: pair[1].position)
        return sources

    def universal_first_hop_ok(self, dep: Dep) -> bool:
        # addr_gep cannot filter v4: a stale load can hand the attacker a
        # base pointer (§5.3).
        return True

    def _index_attacker_controlled(self, index: AEGNode) -> bool:
        # A bypassing load returns stale memory, which is attacker-
        # controlled regardless of type (§5.3); otherwise fall back to
        # ordinary taint.
        if index.nid in self._bypassable:
            return True
        return super()._index_attacker_controlled(index)


@register_engine
class ClouFWD(DetectionEngine):
    """Spectre v1.1 (FWD/NEW, §6.1): a *transient store* — executed in
    the shadow of a mispredicted branch — forwards wrong data to a
    later load, and a transmitter leaks the forwarded value.

    Two corruption modes, matched per (store, load) pair:

    - ``oob``: the store's address is attacker-controlled (the classic
      v1.1 bounds-check-bypassed write), so within the forward window
      it can hit *any* slot a later load reads — the forwarded value is
      attacker-chosen and the chain is universal (UDT/UCT);
    - ``forward``: the store's address is fixed but its *data* is
      tainted and it may alias the load architecturally — the load
      transiently observes a secret value that never commits (the NEW
      pattern, §6.1), a DT.

    Range pruning is sound here on the *store* side only (opt-in via
    ``enable_range_pruning``): a store that provably stays inside its
    object on every A-CFG path — including mispredicted ones — cannot go
    out of bounds, so it loses the ``oob`` mode (it keeps ``forward``).
    The load side must not prune, for the same reason as STL: a
    provably in-bounds load can still consume a corrupted value.
    """

    name = "fwd"
    attack = "Spectre v1.1 / NEW (transient store forwards wrong data)"
    primitive = "mispredicted branch shadowing a store"
    range_pruning = "store side only (provably bounded stores lose oob)"
    repair_note = "lfence per forward window (2/program in §6.1)"

    def __init__(self, aeg: SAEG, config: ClouConfig = CLOU_DEFAULT_CONFIG):
        super().__init__(aeg, config)
        self._corruptors, self._pruned_oob = self._compute_corruptors()

    def _compute_corruptors(self):
        """(store, guard branches, oob) triples: transient stores whose
        forward can corrupt a later load, plus the count of stores whose
        oob mode the interval analysis pruned away."""
        ranges = None
        if self.config.enable_range_pruning:
            from repro.analysis.interval import IntervalAnalysis

            ranges = IntervalAnalysis(self.aeg.function)
        corruptors = []
        pruned = 0
        branches = self.aeg.branches()
        for store in self.aeg.stores():
            guards = tuple(
                branch for branch in branches
                if self.aeg.before(branch, store)
                and (distance := self.aeg.min_distance(branch, store))
                is not None
                and distance <= self.config.rob_size
                and self.aeg.fence_free_between(branch, store)
            )
            if not guards:
                continue  # never executes transiently
            oob = self.aeg.value_tainted(store.instruction.pointer)
            if oob and ranges is not None and \
                    ranges.access_in_bounds(store.instruction):
                oob = False
                pruned += 1
            data_tainted = store.instruction.value is not None and \
                self.aeg.value_tainted(store.instruction.value)
            if not oob and not data_tainted:
                continue  # forwards neither a wrong slot nor a secret
            corruptors.append((store, guards, oob))
        return corruptors, pruned

    def prunes_ranges(self) -> bool:
        # The base engine's load-side pruning is unsound for FWD (an
        # in-bounds load can still read a corrupted slot); the sound
        # store-side pruning happens in _compute_corruptors instead.
        return False

    def speculation_sources(self, transmit: AEGNode, view: WindowView
                            ) -> list[tuple[AEGNode, AEGNode | None]]:
        """(guard branch, corrupting store) pairs visible from the
        transmitter.  API parity only: the FWD search overrides
        :meth:`_search_transmit` and matches stores per corrupted
        access instead."""
        sources = [
            (guards[0], store)
            for store, guards, _oob in self._corruptors
            if view.contains(store)
        ]
        sources.sort(key=lambda pair: pair[1].position)
        return sources

    def universal_first_hop_ok(self, dep: Dep) -> bool:
        # Like STL: a forwarded value can be a base pointer, so the
        # addr_gep filter does not apply.
        return True

    def _search(self, report: FunctionReport, budget: _Budget,
                state: _SearchState) -> None:
        if state.cursor == 0:
            # Store-side pruning happens once at corruptor construction;
            # attribute it to fresh runs only (a resumed checkpoint
            # already carries the count — checkpoints are only emitted
            # with cursor >= 1).
            report.pruned += self._pruned_oob
        super()._search(report, budget, state)

    def _search_transmit(self, transmit: AEGNode, view: WindowView,
                         address_deps: tuple[Dep, ...], want: set[str],
                         report: FunctionReport, budget: _Budget) -> None:
        for dep in address_deps:
            if budget.check():
                return
            if dep.store_hops > self.config.max_store_hops:
                continue
            access = self.aeg.node_of(dep.source)
            if access.nid == transmit.nid or not access.is_load:
                continue
            if not view.contains(access):
                continue  # outside the sliding window
            self._classify_forward(transmit, access, dep, view, want,
                                   report, budget)
        if "ct" in want or "uct" in want:
            self._search_forward_control(transmit, view, want,
                                         report, budget)

    def _forward_pairs(self, access: AEGNode):
        """Corrupting (store, guards, oob) triples whose forward window
        covers ``access``: the store is earlier, still in the store
        queue (within ``lsq_size``), not fenced off, and — in forward
        mode — architecturally possibly same-address."""
        pairs = []
        for store, guards, oob in self._corruptors:
            if store.nid == access.nid:
                continue
            if not self.aeg.before(store, access):
                continue
            distance = self.aeg.min_distance(store, access)
            if distance is None or distance > self.config.lsq_size:
                continue
            if not self.aeg.fence_free_between(store, access):
                continue
            if not oob and not self.aeg.alias.may_alias(
                store.instruction.pointer, access.instruction.pointer,
            ):
                continue
            pairs.append((store, guards, oob))
        return pairs

    def _transient_pair(self, store: AEGNode, guards, access: AEGNode,
                        transmit: AEGNode, view: WindowView):
        """The first guard under which both the corrupted access and the
        transmitter are transient, or None."""
        for guard in guards:
            if self._is_transient(access, guard, store, view) and \
                    self._is_transient(transmit, guard, store, view):
                return guard
        return None

    def _classify_forward(self, transmit: AEGNode, access: AEGNode,
                          dep: Dep, view: WindowView, want: set[str],
                          report: FunctionReport, budget: _Budget) -> None:
        pair = self._sigma_compatible([access, transmit], report, budget)
        if pair is False:
            return
        for store, guards, oob in self._forward_pairs(access):
            primitive = self._transient_pair(store, guards, access,
                                             transmit, view)
            if primitive is None:
                continue
            triple = self._sigma_compatible([store, access, transmit],
                                            report, budget)
            if triple is False:
                continue
            if oob and "udt" in want:
                klass = TransmitterClass.UNIVERSAL_DATA
            elif "dt" in want:
                klass = TransmitterClass.DATA
            else:
                continue
            report.witnesses.append(ClouWitness(
                engine=self.name,
                klass=klass,
                transmit=NodeRef.of(transmit, self.aeg),
                primitive=NodeRef.of(primitive, self.aeg),
                access=NodeRef.of(access, self.aeg),
                window_start=NodeRef.of(store, self.aeg),
                transient_transmit=True,
                transient_access=True,
                store_hops=dep.store_hops,
                confirmed=pair is True and triple is True,
            ))
            return  # one corrupting store per chain suffices

    def _search_forward_control(self, transmit: AEGNode, view: WindowView,
                                want: set[str], report: FunctionReport,
                                budget: _Budget) -> None:
        """Control-flow leakage of forwarded data (FWD04/FWD05's second
        window): a branch condition reads a corruptible load, and the
        transmitter in its shadow leaks the outcome."""
        for branch in self._branches_in(view):
            if budget.check():
                return
            cond_deps = self.aeg.branch_cond_deps(branch)
            if not cond_deps:
                continue
            branch_ok = self._sigma_compatible([branch, transmit],
                                               report, budget)
            if branch_ok is False:
                continue
            reported = False
            for dep in cond_deps:
                if dep.store_hops > self.config.max_store_hops:
                    continue
                access = self.aeg.node_of(dep.source)
                if not access.is_load or not view.contains(access):
                    continue
                for store, guards, oob in self._forward_pairs(access):
                    primitive = self._transient_pair(store, guards, access,
                                                     transmit, view)
                    if primitive is None:
                        continue
                    triple = self._sigma_compatible([store, access, branch],
                                                    report, budget)
                    if triple is False:
                        continue
                    if oob and "uct" in want:
                        klass = TransmitterClass.UNIVERSAL_CONTROL
                    elif "ct" in want:
                        klass = TransmitterClass.CONTROL
                    else:
                        continue
                    report.witnesses.append(ClouWitness(
                        engine=self.name,
                        klass=klass,
                        transmit=NodeRef.of(transmit, self.aeg),
                        primitive=NodeRef.of(primitive, self.aeg),
                        access=NodeRef.of(access, self.aeg),
                        window_start=NodeRef.of(store, self.aeg),
                        transient_transmit=True,
                        transient_access=True,
                        store_hops=dep.store_hops,
                        confirmed=branch_ok is True and triple is True,
                    ))
                    reported = True
                    break
                if reported:
                    break
            # one control witness per (branch, transmit) suffices


@register_engine
class ClouPSF(ClouSTL):
    """Predictive store forwarding: the §5.2 alias-predicting hardware
    parameterization as its own engine.

    The STL dual: instead of a load *bypassing* a same-address store
    (reading stale memory), the load is *wrongly paired* with an
    earlier in-flight store by the forwarding predictor and transiently
    consumes a value destined for a different address (the Fig. 4b
    SPECTRE-PSF shape in :mod:`repro.lcm.attacks`).

    Pairing model: within the store-queue window any fence-free earlier
    store may be predicted to forward to the load — the predictor does
    not consult addresses, so the architectural alias result is
    irrelevant — *except* MUST-alias pairs, whose forward delivers the
    architecturally-correct value (that is STL's stale-read territory,
    not a misprediction).  Range pruning stays off for the same reason
    as STL: the forwarded value is unconstrained by the load's slot.
    """

    name = "psf"
    attack = "PSF (wrong-store forwarding via alias prediction)"
    primitive = "load wrongly paired with an in-flight store"
    range_pruning = "none (same reasoning as STL)"
    repair_note = "lfence between wrong store and forwarding load"

    def _compute_bypassable(self) -> dict[int, AEGNode]:
        """load nid -> the latest earlier store the predictor can
        wrongly forward from."""
        pairs: dict[int, AEGNode] = {}
        if self.config.lsq_size <= 0:
            return pairs  # no store can be in flight
        for load in self.aeg.loads():
            view = self.aeg.window(load, self.config.lsq_size)
            best: AEGNode | None = None
            for node in view.nodes_within(self.aeg, self.config.lsq_size):
                if not node.is_store:
                    continue
                if not view.fence_free(node):
                    continue
                if self.aeg.alias.alias(
                    node.instruction.pointer, load.instruction.pointer,
                ) is AliasResult.MUST:
                    continue  # a correct forward: STL's case, not PSF's
                if best is None or node.position > best.position:
                    best = node
            if best is not None:
                pairs[load.nid] = best
        return pairs
