"""Report types for Clou analyses (Fig. 6's outputs: transmitters +
witness executions)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clou.aeg import AEGNode
from repro.lcm.taxonomy import TransmitterClass


@dataclass(frozen=True)
class NodeRef:
    """A stable, printable reference to an S-AEG node.

    ``provenance`` names the storage a memory node touches (the alias
    analysis base, e.g. ``global:sec_table``) — used by the secrecy-label
    filter of :mod:`repro.clou.postprocess` and handy in reports.
    """

    block: str
    index: int
    text: str
    provenance: str = ""

    @classmethod
    def of(cls, node: AEGNode, aeg=None) -> "NodeRef":
        provenance = ""
        if aeg is not None:
            from repro.ir import Store

            ins = node.instruction
            pointer = getattr(ins, "pointer", None)
            if pointer is not None:
                provenance = str(aeg.alias.value_provenance(pointer))
        return cls(node.block, node.index, str(node.instruction), provenance)

    def __str__(self) -> str:
        suffix = f"  <{self.provenance}>" if self.provenance else ""
        return f"[{self.block}#{self.index}] {self.text}{suffix}"


@dataclass(frozen=True)
class ClouWitness:
    """One leakage witness: the speculation primitive plus the chain."""

    engine: str                     # 'pht' | 'stl'
    klass: TransmitterClass
    transmit: NodeRef
    primitive: NodeRef              # the branch (PHT) / bypassed store (STL)
    access: NodeRef | None = None
    index: NodeRef | None = None
    window_start: NodeRef | None = None  # STL: the bypassing load
    transient_transmit: bool = True
    transient_access: bool = False
    store_hops: int = 0
    """Total (data.rf) memory hops in the chain — 0 means a pure
    addr_gep/addr pattern, the high-confidence class of §6.2.2's
    worst-case-alias counts (the parenthesized numbers in Table 2)."""
    confirmed: bool = True
    """False when some σ-compatibility query in this chain came back
    UNKNOWN (solver budget or deadline exhausted) and the pattern was
    kept conservatively.  Unconfirmed witnesses never count toward a
    ``leak`` verdict on their own — they degrade the function to
    ``unknown`` instead."""

    def describe(self) -> str:
        parts = [f"{self.klass.value} via {self.engine.upper()}"]
        if not self.confirmed:
            parts[0] += " (unconfirmed: solver budget exhausted)"
        parts.append(f"  primitive: {self.primitive}")
        if self.index is not None:
            parts.append(f"  index:     {self.index}")
        if self.access is not None:
            marker = " (transient)" if self.transient_access else ""
            parts.append(f"  access:    {self.access}{marker}")
        marker = " (transient)" if self.transient_transmit else ""
        parts.append(f"  transmit:  {self.transmit}{marker}")
        return "\n".join(parts)


@dataclass
class FunctionReport:
    """Result of running one engine over one public function."""

    function: str
    engine: str
    witnesses: list[ClouWitness] = field(default_factory=list)
    aeg_size: int = 0
    elapsed: float = 0.0
    timed_out: bool = False
    error: str | None = None
    candidates: int = 0
    """Candidate transmitters that reached the windowed search."""
    pruned: int = 0
    """Universal-classification hops skipped by range pruning — accesses
    the interval analysis proved in-bounds on every A-CFG path."""
    skipped: int = 0
    """Candidate transmitters never examined because the cooperative
    budget expired or the witness cap was hit first.  Non-zero skipped
    means a SAFE-looking report only covers part of the function."""
    undecided: int = 0
    """σ-compatibility queries that returned UNKNOWN (solver conflict
    budget or deadline exhausted).  The affected patterns are kept
    conservatively as unconfirmed witnesses, never dropped."""
    sat_stats: dict = field(default_factory=dict, compare=False)
    """PathOracle/SatSolver counter deltas attributable to this engine
    run (queries, memo hits/misses, encodes, learned/deleted clauses,
    propagations).  Observability only: aggregated into
    :class:`repro.sched.SessionStats`, never serialized into the
    byte-stable ``--json`` output, and legitimately empty for reports
    that did no solver work (e.g. cache hits)."""

    def transmitters(self) -> list[ClouWitness]:
        """One witness per distinct (transmit node, class), ordered by
        (block, index, severity) so reports are byte-stable across runs."""
        seen: dict[tuple[str, int, TransmitterClass], ClouWitness] = {}
        for witness in self.witnesses:
            key = (witness.transmit.block, witness.transmit.index, witness.klass)
            held = seen.get(key)
            # Prefer a confirmed witness over an unconfirmed duplicate so
            # serialization (which stores only transmitters) preserves
            # the verdict; otherwise first wins, keeping output stable.
            if held is None or (witness.confirmed and not held.confirmed):
                seen[key] = witness
        return sorted(
            seen.values(),
            key=lambda w: (w.transmit.block, w.transmit.index,
                           -w.klass.severity, w.klass.value),
        )

    def count(self, klass: TransmitterClass) -> int:
        return sum(1 for w in self.transmitters() if w.klass is klass)

    def counts(self) -> dict[TransmitterClass, int]:
        return {klass: self.count(klass) for klass in TransmitterClass}

    @property
    def leaky(self) -> bool:
        return bool(self.witnesses)

    @property
    def complete(self) -> bool:
        """Did the search cover the whole function with every query
        decided?  Only complete, error-free runs may claim SAFE (and
        only those are cached on disk)."""
        return (not self.timed_out and self.error is None
                and self.skipped == 0 and self.undecided == 0)

    @property
    def verdict(self) -> str:
        """The three-valued verdict lattice: ``leak`` ⊐ ``unknown`` ⊐
        ``safe``.  ``leak`` needs a *confirmed* witness; an incomplete or
        undecided search without one can only say ``unknown`` — a
        degraded run never silently reports safety it did not prove."""
        if any(w.confirmed for w in self.witnesses):
            return "leak"
        if self.witnesses or not self.complete:
            return "unknown"
        return "safe"

    def coverage(self) -> dict[str, int]:
        """The candidate accounting behind the verdict (serialized as
        the ``coverage`` section of ``--json``)."""
        return {
            "examined": self.candidates,
            "pruned": self.pruned,
            "skipped_by_budget": self.skipped,
            "undecided": self.undecided,
        }

    def summary(self) -> str:
        counts = self.counts()
        rendered = "/".join(
            f"{counts[k]}{k.value}"
            for k in (TransmitterClass.DATA, TransmitterClass.CONTROL,
                      TransmitterClass.UNIVERSAL_DATA,
                      TransmitterClass.UNIVERSAL_CONTROL)
        )
        status = " TIMEOUT" if self.timed_out else ""
        if not self.complete:
            status += (f" INCOMPLETE(skipped={self.skipped}"
                       f" undecided={self.undecided})")
        return (f"{self.function} [{self.engine}] "
                f"{rendered} in {self.elapsed:.2f}s "
                f"(aeg={self.aeg_size}, verdict={self.verdict}){status}")


@dataclass
class ModuleReport:
    """Aggregated results over every analyzed public function."""

    name: str
    engine: str
    functions: list[FunctionReport] = field(default_factory=list)
    config: "object | None" = None
    """The :class:`repro.clou.engine.ClouConfig` the analysis ran under.
    Populated by :meth:`repro.sched.ClouSession.run` so configs
    round-trip through ``--json`` (deterministic, so it is part of the
    byte-stable output)."""
    stats: "object | None" = None
    """Scheduler observability (a :class:`repro.sched.SessionStats`):
    per-item timings, cache hits/misses, retries, timeouts, crashes,
    plus the aggregated candidate/pruned counters.  Populated by
    :meth:`repro.sched.ClouSession.run`; never serialized into the
    byte-stable ``--json`` output (wall-clock data would break it)."""

    def total(self, klass: TransmitterClass) -> int:
        return sum(report.count(klass) for report in self.functions)

    def totals(self) -> dict[TransmitterClass, int]:
        return {klass: self.total(klass) for klass in TransmitterClass}

    @property
    def elapsed(self) -> float:
        return sum(report.elapsed for report in self.functions)

    @property
    def transmitters(self) -> list[ClouWitness]:
        """All transmitters in deterministic (function, block, index)
        order, independent of analysis order."""
        return [
            w
            for report in sorted(self.functions, key=lambda r: r.function)
            for w in report.transmitters()
        ]

    @property
    def candidates(self) -> int:
        return sum(report.candidates for report in self.functions)

    @property
    def pruned(self) -> int:
        return sum(report.pruned for report in self.functions)

    @property
    def skipped(self) -> int:
        return sum(report.skipped for report in self.functions)

    @property
    def undecided(self) -> int:
        return sum(report.undecided for report in self.functions)

    @property
    def complete(self) -> bool:
        return all(report.complete for report in self.functions)

    @property
    def verdict(self) -> str:
        """Module-level verdict: ``leak`` if any function leaks, else
        ``unknown`` if any function is undecided/incomplete, else
        ``safe``."""
        verdicts = {report.verdict for report in self.functions}
        if "leak" in verdicts:
            return "leak"
        if "unknown" in verdicts:
            return "unknown"
        return "safe"

    @property
    def leaky(self) -> bool:
        return any(report.leaky for report in self.functions)

    def coverage(self) -> dict[str, int]:
        """Module-level coverage accounting (sums the per-function
        :meth:`FunctionReport.coverage` sections)."""
        return {
            "examined": self.candidates,
            "pruned": self.pruned,
            "skipped_by_budget": self.skipped,
            "undecided": self.undecided,
        }

    def summary(self) -> str:
        totals = self.totals()
        rendered = "/".join(
            f"{totals[k]}{k.value}"
            for k in (TransmitterClass.DATA, TransmitterClass.CONTROL,
                      TransmitterClass.UNIVERSAL_DATA,
                      TransmitterClass.UNIVERSAL_CONTROL)
        )
        return (f"{self.name} [{self.engine}] {len(self.functions)} functions, "
                f"{rendered}, {self.elapsed:.2f}s")
