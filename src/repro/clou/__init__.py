"""Clou: static detection and repair of Spectre leakage, built on LCMs (§5)."""

from repro.clou.acfg import ACFG, build_acfg, inline_calls, unroll_loops
from repro.clou.aeg import SAEG, AEGNode, Dep, PathOracle
from repro.clou.alias import AliasAnalysis, AliasResult, Provenance
from repro.clou.driver import (
    CLOU_DEFAULT_CONFIG,
    ClouConfig,
    analyze_function,
    analyze_module,
    analyze_source,
    repair_function,
    repair_source,
)
from repro.clou.engine import (
    ClouFWD,
    ClouPHT,
    ClouPSF,
    ClouSTL,
    ENGINES,
    engine_names,
    register_engine,
)
from repro.clou.postprocess import (
    GadgetClass,
    PostProcessResult,
    group_witnesses,
    postprocess,
    ranges_for,
)
from repro.clou.repair import RepairResult, insert_fences, minimum_hitting_set, repair
from repro.clou.report import ClouWitness, FunctionReport, ModuleReport, NodeRef

__all__ = [
    "ACFG",
    "AEGNode",
    "AliasAnalysis",
    "AliasResult",
    "CLOU_DEFAULT_CONFIG",
    "ClouConfig",
    "ClouFWD",
    "ClouPHT",
    "ClouPSF",
    "ClouSTL",
    "ClouWitness",
    "Dep",
    "ENGINES",
    "FunctionReport",
    "GadgetClass",
    "ModuleReport",
    "NodeRef",
    "PathOracle",
    "PostProcessResult",
    "Provenance",
    "RepairResult",
    "SAEG",
    "analyze_function",
    "analyze_module",
    "analyze_source",
    "build_acfg",
    "engine_names",
    "inline_calls",
    "insert_fences",
    "minimum_hitting_set",
    "group_witnesses",
    "postprocess",
    "ranges_for",
    "register_engine",
    "repair",
    "repair_function",
    "repair_source",
    "unroll_loops",
]
