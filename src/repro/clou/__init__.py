"""Clou: static detection and repair of Spectre leakage, built on LCMs (§5)."""

from repro.clou.acfg import ACFG, build_acfg, inline_calls, unroll_loops
from repro.clou.aeg import SAEG, AEGNode, Dep, PathOracle
from repro.clou.alias import AliasAnalysis, AliasResult, Provenance
from repro.clou.driver import (
    CLOU_DEFAULT_CONFIG,
    ClouConfig,
    analyze_function,
    analyze_module,
    analyze_source,
    repair_function,
    repair_source,
)
from repro.clou.engine import ClouPHT, ClouSTL, ENGINES
from repro.clou.postprocess import (
    GadgetClass,
    PostProcessResult,
    group_witnesses,
    postprocess,
    ranges_for,
)
from repro.clou.repair import RepairResult, insert_fences, minimum_hitting_set, repair
from repro.clou.report import ClouWitness, FunctionReport, ModuleReport, NodeRef

__all__ = [
    "ACFG",
    "AEGNode",
    "AliasAnalysis",
    "AliasResult",
    "CLOU_DEFAULT_CONFIG",
    "ClouConfig",
    "ClouPHT",
    "ClouSTL",
    "ClouWitness",
    "Dep",
    "ENGINES",
    "FunctionReport",
    "GadgetClass",
    "ModuleReport",
    "NodeRef",
    "PathOracle",
    "PostProcessResult",
    "Provenance",
    "RepairResult",
    "SAEG",
    "analyze_function",
    "analyze_module",
    "analyze_source",
    "build_acfg",
    "inline_calls",
    "insert_fences",
    "minimum_hitting_set",
    "group_witnesses",
    "postprocess",
    "ranges_for",
    "repair",
    "repair_function",
    "repair_source",
    "unroll_loops",
]
