"""Abstract CFG construction (§5.1): loop summarization and inlining.

Clou eliminates loops by *two unrollings* (with memory alias analysis,
all relevant com/comx interactions of a loop are modeled by two copies of
its body) and eliminates calls by inlining (recursive calls inlined
twice).  Calls to undefined functions are kept and later treated as
*havoc*: a load or store to any of their pointer operands (§5.1).

All transforms are IR-to-IR; the result is a DAG CFG (``Function.is_dag``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace as dc_replace

from repro.errors import AnalysisError
from repro.ir import (
    Alloca,
    Argument,
    BasicBlock,
    BinOp,
    Branch,
    Call,
    Cast,
    Constant,
    Function,
    GetElementPtr,
    ICmp,
    Instruction,
    Jump,
    Load,
    Module,
    Ret,
    Store,
    Temp,
    Value,
    pointer_to,
    verify_function,
)
from repro.relations import Relation

MAX_ACFG_INSTRUCTIONS = 60_000
RECURSION_INLINE_LIMIT = 2


# ----------------------------------------------------------------------
# Generic block cloning with renaming
# ----------------------------------------------------------------------


def _rename_value(value: Value, mapping: dict[str, Temp]) -> Value:
    if isinstance(value, Temp) and value.name in mapping:
        return mapping[value.name]
    return value


def _clone_instruction(ins: Instruction, temp_map: dict[str, Temp],
                       label_map: dict[str, str], suffix: str) -> Instruction:
    cloned = dc_replace(ins)
    if ins.result is not None:
        new_result = Temp(f"{ins.result.name}{suffix}", ins.result.type)
        temp_map[ins.result.name] = new_result
        cloned.result = new_result
    if isinstance(cloned, Load):
        cloned.pointer = _rename_value(cloned.pointer, temp_map)
    elif isinstance(cloned, Store):
        cloned.value = _rename_value(cloned.value, temp_map)
        cloned.pointer = _rename_value(cloned.pointer, temp_map)
    elif isinstance(cloned, GetElementPtr):
        cloned.base = _rename_value(cloned.base, temp_map)
        cloned.indices = tuple(_rename_value(i, temp_map) for i in cloned.indices)
    elif isinstance(cloned, (BinOp, ICmp)):
        cloned.lhs = _rename_value(cloned.lhs, temp_map)
        cloned.rhs = _rename_value(cloned.rhs, temp_map)
    elif isinstance(cloned, Cast):
        cloned.value = _rename_value(cloned.value, temp_map)
    elif isinstance(cloned, Call):
        cloned.args = tuple(_rename_value(a, temp_map) for a in cloned.args)
    elif isinstance(cloned, Branch):
        cloned.cond = _rename_value(cloned.cond, temp_map)
        cloned.then_label = label_map.get(cloned.then_label, cloned.then_label)
        cloned.else_label = label_map.get(cloned.else_label, cloned.else_label)
    elif isinstance(cloned, Jump):
        cloned.label = label_map.get(cloned.label, cloned.label)
    elif isinstance(cloned, Ret) and cloned.value is not None:
        cloned.value = _rename_value(cloned.value, temp_map)
    return cloned


def _clone_blocks(blocks: list[BasicBlock], suffix: str,
                  internal_labels: set[str]) -> list[BasicBlock]:
    """Clone a region; only labels inside the region are remapped."""
    label_map = {label: f"{label}{suffix}" for label in internal_labels}
    temp_map: dict[str, Temp] = {}
    cloned_blocks = []
    for block in blocks:
        cloned = BasicBlock(label_map.get(block.label, block.label))
        for ins in block.instructions:
            cloned.instructions.append(
                _clone_instruction(ins, temp_map, label_map, suffix)
            )
        cloned_blocks.append(cloned)
    return cloned_blocks


# ----------------------------------------------------------------------
# Loop summarization (two unrollings)
# ----------------------------------------------------------------------


def _find_back_edge(function: Function) -> tuple[str, str] | None:
    """Find one back edge (tail -> head) via DFS from the entry block."""
    adjacency = {block.label: block.successors() for block in function.blocks}
    visited: set[str] = set()
    on_stack: set[str] = set()
    result: list[tuple[str, str]] = []

    def dfs(label: str) -> bool:
        visited.add(label)
        on_stack.add(label)
        for successor in adjacency.get(label, ()):
            if successor in on_stack:
                result.append((label, successor))
                return True
            if successor not in visited and dfs(successor):
                return True
        on_stack.discard(label)
        return False

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, len(function.blocks) * 4 + 100))
    try:
        dfs(function.entry.label)
    finally:
        sys.setrecursionlimit(old_limit)
    return result[0] if result else None


def _natural_loop(function: Function, tail: str, head: str) -> set[str]:
    """Blocks of the natural loop of back edge tail->head: head plus all
    blocks that reach tail without passing through head."""
    predecessors: dict[str, list[str]] = {}
    for block in function.blocks:
        for successor in block.successors():
            predecessors.setdefault(successor, []).append(block.label)
    loop = {head, tail}
    worklist = [tail]
    while worklist:
        label = worklist.pop()
        for predecessor in predecessors.get(label, ()):
            if predecessor not in loop:
                loop.add(predecessor)
                worklist.append(predecessor)
    return loop


def _redirect(block: BasicBlock, old_target: str, new_target: str) -> None:
    terminator = block.terminator
    if isinstance(terminator, Jump) and terminator.label == old_target:
        terminator.label = new_target
    elif isinstance(terminator, Branch):
        if terminator.then_label == old_target:
            terminator.then_label = new_target
        if terminator.else_label == old_target:
            terminator.else_label = new_target


def unroll_loops(function: Function, unroll_factor: int = 2,
                 max_iterations: int = 64) -> Function:
    """Summarize every loop with ``unroll_factor`` copies of its body.

    The final back edge is *cut*: it is redirected to a block that ends
    the path (paths needing more iterations are summarized by the two
    modeled ones, §5.1).
    """
    counter = itertools.count(0)
    for _ in range(max_iterations):
        back_edge = _find_back_edge(function)
        if back_edge is None:
            break
        tail, head = back_edge
        loop_labels = _natural_loop(function, tail, head)
        loop_blocks = [b for b in function.blocks if b.label in loop_labels]
        # All latches: loop blocks with an edge back to the header (a
        # `while` with `continue` has several).
        latch_labels = [
            b.label for b in loop_blocks if head in b.successors()
        ]

        unroll_id = next(counter)
        all_clones: list[BasicBlock] = []
        previous_tails: list[BasicBlock] = [
            function.block(label) for label in latch_labels
        ]
        previous_head_name = head
        for copy_index in range(1, unroll_factor):
            suffix = f".u{unroll_id}.{copy_index}"
            clones = _clone_blocks(loop_blocks, suffix, loop_labels)
            all_clones.extend(clones)
            for block in previous_tails:
                _redirect(block, previous_head_name, f"{head}{suffix}")
            previous_tails = [
                b for b in clones
                if b.label in {f"{label}{suffix}" for label in latch_labels}
            ]
            previous_head_name = f"{head}{suffix}"

        # Cut the final copy's back edges.
        cut_label = f"loop.cut.{unroll_id}"
        for block in previous_tails:
            _redirect(block, previous_head_name, cut_label)
        cut_block = BasicBlock(cut_label)
        from repro.ir import VoidType

        if isinstance(function.return_type, VoidType):
            cut_block.instructions.append(Ret())
        else:
            cut_block.instructions.append(
                Ret(value=Constant(0, function.return_type))
            )
        function.blocks.extend(all_clones)
        function.blocks.append(cut_block)

        if function.instruction_count() > MAX_ACFG_INSTRUCTIONS:
            raise AnalysisError(
                f"{function.name}: A-CFG exceeded {MAX_ACFG_INSTRUCTIONS} "
                "instructions during loop unrolling"
            )
    else:
        raise AnalysisError(
            f"{function.name}: loop structure too complex to summarize"
        )
    return function


# ----------------------------------------------------------------------
# Function inlining
# ----------------------------------------------------------------------


def _inline_one_call(function: Function, block_index: int, ins_index: int,
                     callee: Function, chain: tuple[str, ...],
                     inline_id: int) -> None:
    """Splice ``callee`` in place of the call instruction."""
    block = function.blocks[block_index]
    call = block.instructions[ins_index]
    suffix = f".i{inline_id}"

    callee_labels = {b.label for b in callee.blocks}
    clones = _clone_blocks(callee.blocks, suffix, callee_labels)

    # Substitute arguments: the callee entry stores Argument values into
    # param allocas; replace those Argument operands with actual values.
    arg_values = dict(zip((name for name, _ in callee.params), call.args))

    def substitute(value: Value) -> Value:
        if isinstance(value, Argument) and value.name in arg_values:
            return arg_values[value.name]
        return value

    for clone in clones:
        for ins in clone.instructions:
            if isinstance(ins, Store):
                ins.value = substitute(ins.value)
                ins.pointer = substitute(ins.pointer)
            elif isinstance(ins, Load):
                ins.pointer = substitute(ins.pointer)
            elif isinstance(ins, GetElementPtr):
                ins.base = substitute(ins.base)
                ins.indices = tuple(substitute(i) for i in ins.indices)
            elif isinstance(ins, (BinOp, ICmp)):
                ins.lhs = substitute(ins.lhs)
                ins.rhs = substitute(ins.rhs)
            elif isinstance(ins, Cast):
                ins.value = substitute(ins.value)
            elif isinstance(ins, Call):
                ins.args = tuple(substitute(a) for a in ins.args)
                ins.inline_chain = chain  # provenance for recursion limit
            elif isinstance(ins, Branch):
                ins.cond = substitute(ins.cond)
            elif isinstance(ins, Ret) and ins.value is not None:
                ins.value = substitute(ins.value)

    continuation_label = f"{block.label}.cont{inline_id}"
    continuation = BasicBlock(continuation_label)

    # Route returns through a result slot.
    result_slot: Temp | None = None
    if call.result is not None:
        result_slot = Temp(f"inlret{inline_id}.addr", pointer_to(call.result.type))
        block_prefix = block.instructions[:ins_index]
        block_prefix.append(Alloca(result=result_slot,
                                   allocated_type=call.result.type,
                                   var_name=f"inlret{inline_id}"))
    else:
        block_prefix = block.instructions[:ins_index]

    for clone in clones:
        new_instructions = []
        for ins in clone.instructions:
            if isinstance(ins, Ret):
                if result_slot is not None:
                    value = ins.value if ins.value is not None \
                        else Constant(0, call.result.type)
                    new_instructions.append(Store(value=value, pointer=result_slot))
                new_instructions.append(Jump(label=continuation_label))
            else:
                new_instructions.append(ins)
        clone.instructions = new_instructions

    if call.result is not None:
        continuation.instructions.append(
            Load(result=call.result, pointer=result_slot)
        )
    continuation.instructions.extend(block.instructions[ins_index + 1:])

    entry_label = f"{callee.entry.label}{suffix}"
    block_prefix.append(Jump(label=entry_label))
    block.instructions = block_prefix

    function.blocks[block_index + 1:block_index + 1] = [*clones, continuation]


def inline_calls(function: Function, module: Module) -> Function:
    """Inline all calls to defined functions; recursion is inlined up to
    RECURSION_INLINE_LIMIT times, after which the residual call is left
    undefined (havoc)."""
    inline_counter = itertools.count(0)
    progress = True
    while progress:
        progress = False
        for block_index, block in enumerate(function.blocks):
            for ins_index, ins in enumerate(block.instructions):
                if not isinstance(ins, Call):
                    continue
                callee = module.functions.get(ins.callee)
                if callee is None:
                    continue  # undefined: havoc later
                chain = getattr(ins, "inline_chain", ())
                if chain.count(ins.callee) >= RECURSION_INLINE_LIMIT:
                    continue  # recursion budget exhausted: havoc
                _inline_one_call(
                    function, block_index, ins_index, callee,
                    chain + (ins.callee,), next(inline_counter),
                )
                if function.instruction_count() > MAX_ACFG_INSTRUCTIONS:
                    raise AnalysisError(
                        f"{function.name}: A-CFG exceeded instruction budget "
                        "during inlining"
                    )
                progress = True
                break
            if progress:
                break
    return function


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


@dataclass
class ACFG:
    """The abstract CFG of one public function: a loop- and call-free
    (except undefined calls) DAG over IR instructions."""

    function: Function
    inlined_functions: set[str]

    @property
    def instruction_count(self) -> int:
        return self.function.instruction_count()


def _copy_function(function: Function) -> Function:
    clones = _clone_blocks(function.blocks, "", set())
    # Suffix "" keeps names; deep-copies instructions so transforms don't
    # mutate the module's canonical IR.
    return Function(
        name=function.name,
        params=list(function.params),
        return_type=function.return_type,
        blocks=clones,
        is_public=function.is_public,
    )


def build_acfg(module: Module, function_name: str) -> ACFG:
    """Build the A-CFG of a public function (§5.1): unroll every loop in
    every reachable callee, inline, then unroll the result again (inlined
    loops arrive pre-summarized, so the final pass is a safety net)."""
    if function_name not in module.functions:
        raise AnalysisError(f"no function named {function_name!r}")

    summarized: dict[str, Function] = {}
    for name, fn in module.functions.items():
        summarized[name] = unroll_loops(_copy_function(fn))
    working_module = Module(
        name=module.name,
        functions=summarized,
        globals=module.globals,
        structs=module.structs,
    )
    target = _copy_function(summarized[function_name])
    before = {ins.callee for b in target.blocks
              for ins in b.instructions if isinstance(ins, Call)}
    inline_calls(target, working_module)
    unroll_loops(target)
    verify_function(target)
    if not target.is_dag():
        raise AnalysisError(f"{function_name}: A-CFG is not acyclic")
    inlined = {
        name for name in before if name in module.functions
    }
    return ACFG(function=target, inlined_functions=inlined)
