"""Automatic repair via minimal fence insertion (§5, §6.1).

Every witness can be broken by an ``lfence`` at one of a small set of
program points:

- PHT: a fence between the mispredicting branch and the transmitter —
  we use "immediately before the access instruction", which kills every
  pattern routed through that access;
- STL/PSF: a fence between the (bypassed or wrongly-forwarding) store
  and the load — "immediately before the load";
- FWD: a fence between the corrupting transient store and the corrupted
  load — the repair must break the *stale forward itself*, not merely
  delay the transmit (see :func:`forward_break_positions`).  A program
  whose forwards land in two different windows therefore needs two
  fences, which is why the paper reports 2 fences for FWD/NEW programs
  versus 1 for PHT/STL.

Choosing fences is then a minimum hitting set problem over the
witnesses' candidate sets: exact search for small instances, greedy
otherwise.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.clou.engine import ClouConfig, ENGINES
from repro.clou.aeg import SAEG
from repro.clou.report import ClouWitness, FunctionReport
from repro.ir import FenceInstr, Function

Position = tuple[str, int]  # (block label, instruction index)


def _block_positions(block: str, upto: int, primitive_block: str,
                     primitive_index: int) -> set[Position]:
    """Positions in ``block`` up to index ``upto`` (inclusive) that lie
    strictly after the primitive when it shares the block."""
    start = primitive_index + 1 if block == primitive_block else 0
    return {(block, i) for i in range(start, upto + 1)}


def protect_positions(witness: ClouWitness) -> set[Position]:
    """Blade-style ``protect`` placement (§7): instead of stalling the
    whole pipeline, ``protect`` breaks the value flow from a *transient*
    access to its transmitters — placed immediately after the access
    instruction (before the value's first use as an address).

    Control transmitters are out of protect's reach (a committed branch
    leaks its condition architecturally; Blade scopes these out too), as
    are witnesses whose access is architectural — those fall back to the
    lfence placement.
    """
    from repro.lcm.taxonomy import TransmitterClass

    data_flow = witness.klass in (TransmitterClass.DATA,
                                  TransmitterClass.UNIVERSAL_DATA)
    if data_flow and witness.access is not None and witness.transient_access:
        return {(witness.access.block, witness.access.index + 1)}
    return candidate_positions(witness)


def candidate_positions(witness: ClouWitness) -> set[Position]:
    """Program points where a single lfence breaks this witness.

    A fence breaks a witness if it lies on every path from the
    speculation primitive (or, for STL, from the bypassed store to the
    bypassing load) to the transmitter.  Positions inside the
    transmitter's own block always qualify; so do positions before a
    transient access, and — for STL — positions that separate the
    bypassed store from the bypassing load.
    """
    primitive = witness.primitive
    positions = _block_positions(
        witness.transmit.block, witness.transmit.index,
        primitive.block, primitive.index,
    )
    if witness.access is not None and witness.transient_access:
        positions |= _block_positions(
            witness.access.block, witness.access.index,
            primitive.block, primitive.index,
        )
    if witness.window_start is not None:
        positions |= _block_positions(
            witness.window_start.block, witness.window_start.index,
            primitive.block, primitive.index,
        )
    return positions


def forward_break_positions(witness: ClouWitness) -> set[Position]:
    """FWD placement (§6.1): positions between the corrupting store
    (``window_start``) and the corrupted access.

    A transmit-window fence only delays this transmitter; the corrupted
    value remains forwardable to every other load in the window, so the
    repair targets the root cause — the stale forward.  One fence per
    *forward window* results: FWD programs whose corrupting store feeds
    accesses in two different windows (e.g. FWD05's length-field
    overwrite, read by both the guarding branch and the guarded access)
    need two fences, the paper's 2-fence FWD/NEW pattern.  Falls back to
    the generic placement when the witness lacks the store/access
    references.
    """
    if witness.window_start is not None and witness.access is not None:
        positions = _block_positions(
            witness.access.block, witness.access.index,
            witness.window_start.block, witness.window_start.index,
        )
        if positions:
            return positions
    return candidate_positions(witness)


def _lfence_positions(witness: ClouWitness) -> set[Position]:
    if witness.engine == "fwd":
        return forward_break_positions(witness)
    return candidate_positions(witness)


def minimum_hitting_set(sets: list[set[Position]],
                        exact_limit: int = 12) -> list[Position]:
    """Smallest set of positions intersecting every witness set."""
    sets = [s for s in sets if s]
    if not sets:
        return []
    universe = sorted(set().union(*sets))
    if len(universe) <= exact_limit:
        for size in range(1, len(universe) + 1):
            for combo in itertools.combinations(universe, size):
                chosen = set(combo)
                if all(chosen & s for s in sets):
                    return sorted(chosen)
    # Greedy fallback.
    chosen: list[Position] = []
    remaining = list(sets)
    while remaining:
        best = max(universe, key=lambda p: sum(1 for s in remaining if p in s))
        chosen.append(best)
        remaining = [s for s in remaining if best not in s]
    return sorted(chosen)


def insert_fences(function: Function, positions: list[Position]) -> Function:
    """Insert an lfence before each (block, index) position, in place."""
    by_block: dict[str, list[int]] = {}
    for block_label, index in positions:
        by_block.setdefault(block_label, []).append(index)
    for block in function.blocks:
        if block.label not in by_block:
            continue
        for index in sorted(by_block[block.label], reverse=True):
            block.instructions.insert(index, FenceInstr(kind="lfence"))
    return function


@dataclass
class RepairResult:
    function: str
    engine: str
    fences: list[Position]
    before: FunctionReport | None
    after: FunctionReport | None
    error: str | None = None
    """Set when the repair item itself failed (analysis error, worker
    crash, or wall-clock timeout under the scheduler) — ``before`` and
    ``after`` may then be ``None`` and the repair counts as incomplete."""

    @property
    def fully_repaired(self) -> bool:
        if self.error is not None or self.after is None:
            return False
        return not self.after.leaky

    def summary(self) -> str:
        if self.error is not None:
            return f"{self.function} [{self.engine}]: ERROR {self.error}"
        status = "repaired" if self.fully_repaired else "RESIDUAL LEAKS"
        return (f"{self.function} [{self.engine}]: {len(self.fences)} "
                f"fence(s), {status}")


def repair(acfg_function: Function, engine_name: str,
           config: ClouConfig | None = None,
           max_rounds: int = 48,
           strategy: str = "lfence") -> RepairResult:
    """Detect, insert a minimal fence set, and re-verify (Fig. 6's
    "fence insertion" stage).

    Repair iterates: a fence that breaks one witness may leave an
    alternative chain to the same transmitter alive (the engines report
    one witness per chain), so detection is re-run after each insertion
    round until the function is clean, the surviving-leak signature stops
    changing, or the round budget is exhausted.  The first round's
    hitting set is minimal; later rounds only add fences if new chains
    surface.
    """
    config = config or ClouConfig()
    if strategy not in ("lfence", "protect"):
        raise ValueError(f"unknown repair strategy {strategy!r}")
    positions_of = (_lfence_positions if strategy == "lfence"
                    else protect_positions)
    engine_cls = ENGINES[engine_name]
    before = engine_cls(SAEG(acfg_function), config).run()
    all_fences: list[Position] = []
    current = before
    previous_signature = None
    for _ in range(max_rounds):
        if not current.leaky:
            break
        signature = frozenset(
            (w.primitive.text, w.transmit.text, w.klass)
            for w in current.witnesses
        )
        if signature == previous_signature:
            break  # the exact same leaks survived: fences are not helping
        previous_signature = signature
        witness_sets = [positions_of(w) for w in current.witnesses]
        fences = minimum_hitting_set(witness_sets)
        if not fences:
            break
        insert_fences(acfg_function, fences)
        all_fences.extend(fences)
        current = engine_cls(SAEG(acfg_function), config).run()
    return RepairResult(
        function=acfg_function.name,
        engine=engine_name,
        fences=all_fences,
        before=before,
        after=current,
    )
