"""Post-processing of crypto-library analysis results (§6.2.2).

After detection, the paper's workflow inspects flagged universal
transmitters to filter false positives and low-priority cases:

1. **Misclassified addr.data.rf.addr patterns**: a transmitter that
   leaks a pointer value which it read (via rf) from a speculative
   write is only universal if the data's source and destination access
   different addresses; conservatively these are downgraded to DTs.
2. **Low-priority**: transmitters requiring more than one read of
   speculatively-stale data.
3. **Worst-case alias analysis counts**: only universal transmitters of
   the restricted form ``addr_gep.(addr|ctrl)`` (no ``data.rf`` hops)
   survive when every ``data.rf`` edge is assumed erroneous — the
   parenthesized counts of Table 2.  These are much more likely to be
   true positives.
4. **Secrecy labels** (§7's suggested extension): when the caller
   declares which symbols hold secrets, witnesses whose access cannot
   reach a secret are filtered as benign.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.clou.report import ClouWitness, FunctionReport
from repro.lcm.taxonomy import TransmitterClass

_UNIVERSAL = (TransmitterClass.UNIVERSAL_DATA,
              TransmitterClass.UNIVERSAL_CONTROL)


@dataclass
class PostProcessResult:
    """Witnesses partitioned by the §6.2.2 filters."""

    kept: list[ClouWitness] = field(default_factory=list)
    downgraded: list[ClouWitness] = field(default_factory=list)
    low_priority: list[ClouWitness] = field(default_factory=list)
    filtered_benign: list[ClouWitness] = field(default_factory=list)

    def worst_case_alias_count(self, klass: TransmitterClass) -> int:
        """Table 2's parenthesized statistic: universal transmitters
        surviving worst-case alias analysis (zero data.rf hops)."""
        return sum(
            1 for w in self.kept
            if w.klass is klass and w.store_hops == 0
        )

    def summary(self) -> str:
        return (
            f"{len(self.kept)} kept, {len(self.downgraded)} downgraded, "
            f"{len(self.low_priority)} low-priority, "
            f"{len(self.filtered_benign)} filtered as benign"
        )


def _mentions_secret(witness: ClouWitness, secret_symbols: tuple[str, ...]) -> bool:
    refs = [witness.transmit, witness.access, witness.index]
    haystacks = [
        f"{ref.text} {ref.provenance}" for ref in refs if ref is not None
    ]
    return any(
        symbol in haystack
        for symbol in secret_symbols for haystack in haystacks
    )


@dataclass(frozen=True)
class GadgetClass:
    """An equivalence class of witnesses sharing one culprit speculative
    access (§6.2.3): mitigating that access kills the whole class."""

    culprit: str           # provenance/text of the shared access
    representative: ClouWitness
    size: int

    def __str__(self) -> str:
        return f"gadget class ({self.size} witnesses) via {self.culprit}"


def group_witnesses(witnesses: list[ClouWitness]) -> list[GadgetClass]:
    """Group witnesses into §6.2.3 equivalence classes.

    The paper: "many transmitters uncovered by Clou can be grouped into
    equivalence classes, where each class of transmitters can be
    mitigated by preventing a single culprit speculative access.  We
    report one gadget per equivalence class."  The culprit key is the
    access instruction (falling back to the speculation primitive for
    access-free witnesses).
    """
    by_culprit: dict[str, list[ClouWitness]] = {}
    for witness in witnesses:
        if witness.access is not None:
            key = f"{witness.access.provenance or witness.access.text}"
        else:
            key = f"primitive:{witness.primitive.text}"
        by_culprit.setdefault(key, []).append(witness)
    classes = []
    for culprit, members in by_culprit.items():
        # Represent the class by its most severe member.
        representative = max(members, key=lambda w: w.klass.severity)
        classes.append(GadgetClass(culprit, representative, len(members)))
    classes.sort(key=lambda c: (-c.representative.klass.severity, -c.size))
    return classes


def ranges_for(module, function_name: str):
    """Interval analysis over a function's A-CFG, for :func:`postprocess`'s
    ``ranges`` argument (the same view the engine analyzed)."""
    from repro.analysis.interval import IntervalAnalysis
    from repro.clou.acfg import build_acfg

    return IntervalAnalysis(build_acfg(module, function_name).function)


def postprocess(report: FunctionReport,
                secret_symbols: tuple[str, ...] = (),
                max_stale_reads: int = 1,
                ranges=None) -> PostProcessResult:
    """Apply the §6.2.2 filters to one function report.

    The input report is not modified; callers use the result's
    partitions (the paper applied these filters manually for its
    qualitative analysis and notes an automatic mechanism is possible —
    this is that mechanism).

    ``ranges`` (an :class:`repro.analysis.interval.IntervalAnalysis`
    over the same A-CFG, see :func:`ranges_for`) sharpens the worst-case
    alias downgrades: a universal witness whose access is provably
    in-bounds even transiently can only read its own object, so it is
    downgraded to DT/CT like the pointer-reload case.
    """
    result = PostProcessResult()
    for witness in report.transmitters():
        if secret_symbols and not _mentions_secret(witness, secret_symbols):
            result.filtered_benign.append(witness)
            continue
        if witness.klass in _UNIVERSAL:
            if (ranges is not None and witness.access is not None
                    and ranges.in_bounds_at(witness.access.block,
                                            witness.access.index)):
                result.downgraded.append(replace(
                    witness,
                    klass=TransmitterClass.DATA
                    if witness.klass is TransmitterClass.UNIVERSAL_DATA
                    else TransmitterClass.CONTROL,
                ))
                continue
            # Case 1: universal chains that route the secret through a
            # speculative write and re-load it as a pointer — the
            # addr.data.rf.addr special case — are conservatively
            # downgraded (they are only universal when source and
            # destination addresses differ).
            pointer_reload = (
                witness.store_hops >= 1
                and witness.access is not None
                and "*" in witness.access.text.split("load")[-1]
            )
            if pointer_reload:
                result.downgraded.append(replace(
                    witness,
                    klass=TransmitterClass.DATA
                    if witness.klass is TransmitterClass.UNIVERSAL_DATA
                    else TransmitterClass.CONTROL,
                ))
                continue
            # Case 2: more than one stale read required.
            if witness.store_hops > max_stale_reads:
                result.low_priority.append(witness)
                continue
        result.kept.append(witness)
    return result
